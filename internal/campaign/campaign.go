// Package campaign coordinates many worker processes running one sweep
// against a shared content-addressed result store (internal/store). It
// is a file-based work queue: a sweep point is claimed by creating a
// lease file named after the point's canonical store key, kept alive by
// refreshing the file's mtime (the heartbeat), and released by removing
// it. A worker that is SIGKILLed or hangs simply stops heartbeating;
// its leases age past the TTL and any other worker reclaims them.
//
// Correctness does not rest on the leases. The store's canonical keys
// make re-execution byte-identical, and its append-only latest-wins
// segments make duplicate records harmless, so the campaign is
// exactly-once *rendered* even when two workers race through the same
// point: leases only keep the common case from wasting work, and
// heartbeats only bound how long a dead worker's points stay stuck.
// Everything here is therefore advisory — a TOCTOU window in lease
// stealing costs a duplicate computation, never a wrong result.
//
// On disk a campaign lives in one directory (conventionally
// <store>/campaign, see DirFor), shared by all workers through a
// common filesystem with coherent mtimes:
//
//	leases/<key>.lease     claimed points (JSON body; mtime = heartbeat)
//	workers/<owner>.json   live workers   (JSON body; mtime = heartbeat)
//	failed/<key>.json      attempt log of failing points (cleared on success)
//	quarantine/<key>.json  poison points taken out of rotation
//	manifest.json          optional campaign description (submit)
//
// The layered protocol a worker runs per point is in Worker.Execute:
// consult the store, acquire or wait out the lease, run with a
// watchdog timeout, retry with exponential backoff and jitter, and
// quarantine the point after too many failures instead of killing the
// campaign. Package harness wires this into its scheduler
// (Sched.Campaign); cmd/diam2campaign observes campaigns from the
// outside via Scan.
package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

const (
	leasesDir     = "leases"
	workersDir    = "workers"
	failedDir     = "failed"
	quarantineDir = "quarantine"
	manifestName  = "manifest.json"

	leaseSuffix = ".lease"
)

// DirFor returns the conventional campaign directory inside a store
// directory. Keeping it inside the store means the lease state travels
// with the results it coordinates.
func DirFor(storeDir string) string { return filepath.Join(storeDir, "campaign") }

// leaseInfo is the JSON body of a lease file. The liveness signal is
// the file's mtime, not the body; the body only attributes the lease.
type leaseInfo struct {
	Owner    string `json:"owner"`
	Point    string `json:"point"`
	PID      int    `json:"pid"`
	Host     string `json:"host"`
	Acquired string `json:"acquired"` // RFC3339 UTC
}

// workerInfo is the JSON body of a worker registration file; like a
// lease, its mtime is the heartbeat.
type workerInfo struct {
	Owner    string `json:"owner"`
	PID      int    `json:"pid"`
	Host     string `json:"host"`
	Started  string `json:"started"` // RFC3339 UTC
	LeaseTTL string `json:"lease_ttl"`
}

// Failure is the attempt log of a failing point (failed/<key>.json
// while it is still retryable, quarantine/<key>.json once poisoned).
// The writer always holds the point's lease, so the file needs no
// locking of its own.
type Failure struct {
	Point    string   `json:"point"`
	Key      string   `json:"key"`
	Attempts int      `json:"attempts"`
	LastErr  string   `json:"last_error"`
	Errors   []string `json:"errors,omitempty"` // most recent first, capped
	Owner    string   `json:"owner"`            // last worker to fail it
	Updated  string   `json:"updated"`          // RFC3339 UTC
}

// maxErrorHistory caps the per-point error log carried in a Failure.
const maxErrorHistory = 5

// Manifest describes a submitted campaign: free-form name plus the
// command line the workers are expected to run. It exists so a
// coordinator can answer "what is this store computing" without
// inspecting worker processes.
type Manifest struct {
	Name      string   `json:"name"`
	Args      []string `json:"args,omitempty"`
	Created   string   `json:"created"`
	CreatedBy string   `json:"created_by,omitempty"`
}

// WriteManifest records the campaign description, failing with
// fs.ErrExist if one was already submitted (first writer wins; a
// changed mind means a new store).
func WriteManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, manifestName)
	tmp := fmt.Sprintf("%s.tmp%d", path, os.Getpid())
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	defer os.Remove(tmp)
	// Link, not rename: rename would silently clobber a concurrent
	// submission, link makes exactly one submitter win.
	if err := os.Link(tmp, path); err != nil {
		return err
	}
	return nil
}

// ReadManifest returns the submitted manifest, or nil if none exists.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("campaign: unreadable manifest: %w", err)
	}
	return &m, nil
}

// WorkerStatus is one registered worker as seen by Scan.
type WorkerStatus struct {
	Owner        string  `json:"owner"`
	PID          int     `json:"pid"`
	Host         string  `json:"host"`
	Started      string  `json:"started"`
	HeartbeatAge float64 `json:"heartbeat_age_s"`
	Live         bool    `json:"live"` // heartbeat younger than its lease TTL
}

// LeaseStatus is one claimed point as seen by Scan.
type LeaseStatus struct {
	Point string  `json:"point"`
	Key   string  `json:"key"`
	Owner string  `json:"owner"`
	Age   float64 `json:"age_s"` // since last heartbeat
}

// Status is a point-in-time scan of a campaign directory — everything
// the coordinator endpoints serve. It is assembled purely from the
// filesystem, so any process (a worker, diam2campaign, a test) can
// produce one without joining the campaign.
type Status struct {
	Time        string         `json:"time"`
	Dir         string         `json:"dir"`
	Manifest    *Manifest      `json:"manifest,omitempty"`
	Workers     []WorkerStatus `json:"workers"`
	Leases      []LeaseStatus  `json:"leases"`
	Failed      []Failure      `json:"failed,omitempty"`
	Quarantined []Failure      `json:"quarantined,omitempty"`
}

// Live counts workers with a fresh heartbeat.
func (s Status) LiveWorkers() int {
	n := 0
	for _, w := range s.Workers {
		if w.Live {
			n++
		}
	}
	return n
}

// Scan reads a campaign directory and reports its workers (with
// heartbeat ages), outstanding leases, failing points and quarantined
// points. A directory that does not exist yet scans as an empty
// campaign — a coordinator may be started before the first worker.
func Scan(dir string) (Status, error) {
	now := time.Now()
	st := Status{Time: now.UTC().Format(time.RFC3339), Dir: dir}
	m, err := ReadManifest(dir)
	if err != nil {
		return st, err
	}
	st.Manifest = m

	workers, err := os.ReadDir(filepath.Join(dir, workersDir))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return st, err
	}
	for _, e := range workers {
		path := filepath.Join(dir, workersDir, e.Name())
		fi, err := os.Stat(path)
		if err != nil {
			continue // removed between ReadDir and Stat
		}
		var info workerInfo
		if b, err := os.ReadFile(path); err == nil {
			_ = json.Unmarshal(b, &info) // a torn body degrades to blanks
		}
		if info.Owner == "" {
			info.Owner = strings.TrimSuffix(e.Name(), ".json")
		}
		age := now.Sub(fi.ModTime())
		ttl, _ := time.ParseDuration(info.LeaseTTL)
		if ttl <= 0 {
			ttl = DefaultLeaseTTL
		}
		st.Workers = append(st.Workers, WorkerStatus{
			Owner:        info.Owner,
			PID:          info.PID,
			Host:         info.Host,
			Started:      info.Started,
			HeartbeatAge: age.Seconds(),
			Live:         age <= ttl,
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Owner < st.Workers[j].Owner })

	leases, err := os.ReadDir(filepath.Join(dir, leasesDir))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return st, err
	}
	for _, e := range leases {
		name := e.Name()
		if !strings.HasSuffix(name, leaseSuffix) {
			continue // steal tombs, tmp files
		}
		path := filepath.Join(dir, leasesDir, name)
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		var info leaseInfo
		if b, err := os.ReadFile(path); err == nil {
			_ = json.Unmarshal(b, &info)
		}
		st.Leases = append(st.Leases, LeaseStatus{
			Point: info.Point,
			Key:   strings.TrimSuffix(name, leaseSuffix),
			Owner: info.Owner,
			Age:   now.Sub(fi.ModTime()).Seconds(),
		})
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].Key < st.Leases[j].Key })

	st.Failed, err = readFailures(filepath.Join(dir, failedDir))
	if err != nil {
		return st, err
	}
	st.Quarantined, err = readFailures(filepath.Join(dir, quarantineDir))
	if err != nil {
		return st, err
	}
	return st, nil
}

func readFailures(dir string) ([]Failure, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []Failure
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var f Failure
		if err := json.Unmarshal(b, &f); err != nil {
			continue // torn write of the log itself; the lease protocol retries
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out, nil
}

// writeFileAtomic replaces path via tmp+rename (same directory, unique
// tmp name per process so shared-filesystem writers cannot interleave).
func writeFileAtomic(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp%d", path, os.Getpid())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

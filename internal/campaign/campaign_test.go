package campaign

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testWorker joins dir with a policy tuned for tests: short lease TTL
// (so steal tests don't stall the suite), fast heartbeats, tiny
// backoff and poll.
func testWorker(t *testing.T, dir, owner string, mut func(*Policy)) *Worker {
	t.Helper()
	pol := Policy{
		LeaseTTL:    500 * time.Millisecond,
		Heartbeat:   50 * time.Millisecond,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Poll:        5 * time.Millisecond,
	}
	if mut != nil {
		mut(&pol)
	}
	w, err := NewWorker(dir, owner, pol)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestNewWorkerRejectsBadOwner(t *testing.T) {
	dir := t.TempDir()
	for _, owner := range []string{"", "a/b", ".", "..", "x/../y"} {
		if _, err := NewWorker(dir, owner, Policy{}); err == nil {
			t.Errorf("NewWorker accepted owner %q", owner)
		}
	}
}

// TestAcquireBusyRelease pins the claim protocol: a held lease blocks
// other workers (reporting the holder), release frees it.
func TestAcquireBusyRelease(t *testing.T) {
	dir := t.TempDir()
	w1 := testWorker(t, dir, "w1", nil)
	w2 := testWorker(t, dir, "w2", nil)

	l1, holder, err := w1.acquire("k1", "point-1")
	if err != nil || l1 == nil {
		t.Fatalf("w1 acquire = lease %v, holder %v, err %v; want a held lease", l1, holder, err)
	}
	l2, holder, err := w2.acquire("k1", "point-1")
	if err != nil {
		t.Fatal(err)
	}
	if l2 != nil {
		t.Fatal("w2 acquired a lease w1 already holds")
	}
	if holder == nil || holder.Owner != "w1" || holder.Point != "point-1" {
		t.Fatalf("holder = %+v, want owner w1 / point point-1", holder)
	}
	w1.release(l1)
	l2, _, err = w2.acquire("k1", "point-1")
	if err != nil || l2 == nil {
		t.Fatalf("w2 acquire after release = %v, %v; want a held lease", l2, err)
	}
	w2.release(l2)
}

// TestStealExpiredLease: a lease whose mtime has aged past the TTL is
// reclaimable by any worker, and the original owner's release must not
// remove the thief's fresh lease.
func TestStealExpiredLease(t *testing.T) {
	dir := t.TempDir()
	w1 := testWorker(t, dir, "w1", nil)
	w2 := testWorker(t, dir, "w2", nil)

	l1, _, err := w1.acquire("k1", "p")
	if err != nil || l1 == nil {
		t.Fatalf("acquire: %v, %v", l1, err)
	}
	// Simulate a dead w1: stop its heartbeats and backdate the lease.
	w1.untrack(l1)
	old := time.Now().Add(-2 * w1.pol.leaseTTL())
	if err := os.Chtimes(l1.path, old, old); err != nil {
		t.Fatal(err)
	}
	l2, holder, err := w2.acquire("k1", "p")
	if err != nil || l2 == nil {
		t.Fatalf("steal failed: lease %v, holder %+v, err %v", l2, holder, err)
	}
	// w1's zombie release must notice the theft and leave w2's lease.
	w1.release(l1)
	if _, err := os.Stat(l2.path); err != nil {
		t.Fatalf("w1's release removed w2's stolen lease: %v", err)
	}
	w2.release(l2)
}

// TestHeartbeatKeepsLeaseFresh: a held lease's mtime advances, so a
// slow point on a live worker is never stolen.
func TestHeartbeatKeepsLeaseFresh(t *testing.T) {
	dir := t.TempDir()
	w := testWorker(t, dir, "w1", nil)
	l, _, err := w.acquire("k1", "p")
	if err != nil || l == nil {
		t.Fatalf("acquire: %v, %v", l, err)
	}
	defer w.release(l)
	fi0, err := os.Stat(l.path)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		fi, err := os.Stat(l.path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.ModTime().After(fi0.ModTime()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("lease mtime never refreshed by the heartbeater")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestManifestFirstWriterWins(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{Name: "first"}); err != nil {
		t.Fatal(err)
	}
	err := WriteManifest(dir, Manifest{Name: "second"})
	if !errors.Is(err, fs.ErrExist) {
		t.Fatalf("second submit = %v, want fs.ErrExist", err)
	}
	m, err := ReadManifest(dir)
	if err != nil || m == nil || m.Name != "first" {
		t.Fatalf("manifest = %+v, %v; want the first submission", m, err)
	}
}

// TestExecuteRetriesThenSucceeds is the satellite scenario: a point
// fails twice, then succeeds; the attempt log must be cleared on
// success.
func TestExecuteRetriesThenSucceeds(t *testing.T) {
	dir := t.TempDir()
	w := testWorker(t, dir, "w1", func(p *Policy) { p.MaxAttempts = 5 })
	var calls atomic.Int32
	err := w.Execute(context.Background(), Task{
		Key:   "k1",
		Point: "flaky",
		Attempt: func(ctx context.Context) error {
			if calls.Add(1) <= 2 {
				return fmt.Errorf("transient failure %d", calls.Load())
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Execute = %v, want success after retries", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (fail, fail, succeed)", got)
	}
	if _, err := os.Stat(w.failedPath("k1")); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("failure log not cleared after success: %v", err)
	}
}

// TestExecuteQuarantinesPoisonPoint: after MaxAttempts failures the
// point is quarantined — and stays quarantined for every later Execute
// without running the attempt again.
func TestExecuteQuarantinesPoisonPoint(t *testing.T) {
	dir := t.TempDir()
	w := testWorker(t, dir, "w1", func(p *Policy) { p.MaxAttempts = 2 })
	var calls atomic.Int32
	err := w.Execute(context.Background(), Task{
		Key:   "k1",
		Point: "poison",
		Attempt: func(ctx context.Context) error {
			calls.Add(1)
			return errors.New("always broken")
		},
	})
	var q *Quarantined
	if !errors.As(err, &q) {
		t.Fatalf("Execute = %v, want *Quarantined", err)
	}
	if q.Point != "poison" || q.Attempts != 2 || !strings.Contains(q.LastErr, "always broken") {
		t.Fatalf("quarantine verdict = %+v", q)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("attempts = %d, want exactly MaxAttempts=2", got)
	}
	// Another worker (or a rerun) must hit the quarantine verdict
	// without burning CPU on the poison point.
	w2 := testWorker(t, dir, "w2", func(p *Policy) { p.MaxAttempts = 2 })
	err = w2.Execute(context.Background(), Task{
		Key:     "k1",
		Point:   "poison",
		Attempt: func(ctx context.Context) error { calls.Add(1); return nil },
	})
	if !errors.As(err, &q) {
		t.Fatalf("second Execute = %v, want *Quarantined", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("quarantined point ran again: %d attempts", got)
	}
}

// TestAttemptsAccumulateAcrossWorkers: the failure log is shared, so a
// point that failed once under w1 needs only MaxAttempts-1 more
// failures under w2 to quarantine.
func TestAttemptsAccumulateAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	w1 := testWorker(t, dir, "w1", func(p *Policy) { p.MaxAttempts = 3 })
	w2 := testWorker(t, dir, "w2", func(p *Policy) { p.MaxAttempts = 3 })
	boom := func(ctx context.Context) error { return errors.New("boom") }

	// One failure under w1, then force it to give the point up by
	// draining it mid-backoff: simplest is a single-attempt run via a
	// cancelled context after the first failure. Instead, record the
	// failure directly through the same path Execute uses.
	l, _, err := w1.acquire("k1", "p")
	if err != nil || l == nil {
		t.Fatalf("acquire: %v, %v", l, err)
	}
	w1.recordFailure(Task{Key: "k1", Point: "p"}, 1, errors.New("boom"))
	w1.release(l)

	err = w2.Execute(context.Background(), Task{Key: "k1", Point: "p", Attempt: boom})
	var q *Quarantined
	if !errors.As(err, &q) {
		t.Fatalf("Execute = %v, want *Quarantined", err)
	}
	if q.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 from w1 + 2 from w2)", q.Attempts)
	}
}

func TestExecuteDrain(t *testing.T) {
	dir := t.TempDir()
	w := testWorker(t, dir, "w1", nil)
	w.Drain()
	err := w.Execute(context.Background(), Task{
		Key:     "k1",
		Point:   "p",
		Attempt: func(ctx context.Context) error { t.Error("drained worker ran an attempt"); return nil },
	})
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("Execute on a draining worker = %v, want ErrDrained", err)
	}
	if _, err := os.Stat(filepath.Join(dir, leasesDir, "k1"+leaseSuffix)); !errors.Is(err, fs.ErrNotExist) {
		t.Error("draining worker claimed a lease")
	}
}

func TestExecuteCachedShortCircuit(t *testing.T) {
	dir := t.TempDir()
	w := testWorker(t, dir, "w1", nil)
	err := w.Execute(context.Background(), Task{
		Key:     "k1",
		Point:   "p",
		Cached:  func() bool { return true },
		Attempt: func(ctx context.Context) error { t.Error("cached point ran an attempt"); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExecuteWatchdogCancelsHungAttempt: the watchdog bounds one
// attempt; a hung attempt is cancelled, counts as a failure, and the
// point is retried.
func TestExecuteWatchdogCancelsHungAttempt(t *testing.T) {
	dir := t.TempDir()
	w := testWorker(t, dir, "w1", func(p *Policy) {
		p.Watchdog = 50 * time.Millisecond
		p.MaxAttempts = 3
	})
	var calls atomic.Int32
	err := w.Execute(context.Background(), Task{
		Key:   "k1",
		Point: "hung",
		Attempt: func(ctx context.Context) error {
			if calls.Add(1) == 1 {
				<-ctx.Done() // hang until the watchdog fires
				return fmt.Errorf("watchdog: %w", ctx.Err())
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Execute = %v, want success on the post-watchdog retry", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (hung+cancelled, then succeeded)", got)
	}
}

// TestBackoffBounds pins the retry curve: exponential from Base, capped
// at Max, jittered downward by at most half.
func TestBackoffBounds(t *testing.T) {
	dir := t.TempDir()
	w := testWorker(t, dir, "w1", func(p *Policy) {
		p.BaseBackoff = 100 * time.Millisecond
		p.MaxBackoff = time.Second
	})
	for attempts := 1; attempts <= 8; attempts++ {
		full := 100 * time.Millisecond << (attempts - 1)
		if full > time.Second {
			full = time.Second
		}
		for i := 0; i < 20; i++ {
			d := w.backoff(attempts)
			if d < full/2 || d > full {
				t.Fatalf("backoff(%d) = %v, want within [%v, %v]", attempts, d, full/2, full)
			}
		}
	}
}

// TestScan covers the coordinator's view: workers with liveness
// verdicts, leases, failure and quarantine listings, and the
// empty-directory case.
func TestScan(t *testing.T) {
	empty, err := Scan(filepath.Join(t.TempDir(), "not-there-yet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Workers)+len(empty.Leases)+len(empty.Failed)+len(empty.Quarantined) != 0 {
		t.Fatalf("scan of a missing dir = %+v, want empty", empty)
	}

	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{Name: "fig 6a"}); err != nil {
		t.Fatal(err)
	}
	w1 := testWorker(t, dir, "w1", nil)
	w2 := testWorker(t, dir, "w2", nil)
	l, _, err := w1.acquire("deadbeef", "fig6|SF|MIN|UNI|load=0.5000")
	if err != nil || l == nil {
		t.Fatalf("acquire: %v, %v", l, err)
	}
	defer w1.release(l)
	w1.recordFailure(Task{Key: "cafe", Point: "flaky-point"}, 2, errors.New("transient"))
	if err := w1.quarantine(Failure{Point: "poison-point", Key: "f00d", Attempts: 3, LastErr: "boom"}); err != nil {
		t.Fatal(err)
	}
	// Kill w2's heartbeat and backdate its registration past its TTL.
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	// Close removes the registration (clean shutdown); recreate it aged,
	// as a SIGKILLed worker would have left it.
	old := time.Now().Add(-2 * w2.pol.leaseTTL())
	if err := os.WriteFile(w2.workerFile, []byte(`{"owner":"w2","lease_ttl":"500ms"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(w2.workerFile, old, old); err != nil {
		t.Fatal(err)
	}

	st, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Manifest == nil || st.Manifest.Name != "fig 6a" {
		t.Errorf("manifest = %+v", st.Manifest)
	}
	if len(st.Workers) != 2 || st.LiveWorkers() != 1 {
		t.Fatalf("workers = %+v, want w1 live and w2 dead", st.Workers)
	}
	if st.Workers[0].Owner != "w1" || !st.Workers[0].Live {
		t.Errorf("w1 status = %+v, want live", st.Workers[0])
	}
	if st.Workers[1].Owner != "w2" || st.Workers[1].Live {
		t.Errorf("w2 status = %+v, want dead (stale heartbeat)", st.Workers[1])
	}
	if len(st.Leases) != 1 || st.Leases[0].Key != "deadbeef" || st.Leases[0].Owner != "w1" {
		t.Errorf("leases = %+v", st.Leases)
	}
	if len(st.Failed) != 1 || st.Failed[0].Point != "flaky-point" || st.Failed[0].Attempts != 2 {
		t.Errorf("failed = %+v", st.Failed)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0].Point != "poison-point" {
		t.Errorf("quarantined = %+v", st.Quarantined)
	}
}

// TestLeaseContentionUnderRace hammers one key from several workers
// concurrently; exactly-once execution is NOT required (the store
// dedups), but the lease file must never be removed by a non-owner and
// every Execute must finish.
func TestLeaseContentionUnderRace(t *testing.T) {
	dir := t.TempDir()
	const workers = 4
	var ran atomic.Int32
	errs := make(chan error, workers)
	done := make(chan struct{})
	var cachedFlag atomic.Bool
	for i := 0; i < workers; i++ {
		w := testWorker(t, dir, fmt.Sprintf("w%d", i), nil)
		go func() {
			errs <- w.Execute(context.Background(), Task{
				Key:    "contended",
				Point:  "p",
				Cached: func() bool { return cachedFlag.Load() },
				Attempt: func(ctx context.Context) error {
					ran.Add(1)
					time.Sleep(10 * time.Millisecond)
					cachedFlag.Store(true)
					return nil
				},
			})
		}()
	}
	go func() {
		for i := 0; i < workers; i++ {
			if err := <-errs; err != nil {
				t.Errorf("Execute: %v", err)
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lease contention deadlocked")
	}
	if ran.Load() < 1 {
		t.Fatal("no worker ever ran the point")
	}
}

package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// lease is a claim this worker holds on one point. The zero of
// released means held; release flips it exactly once.
type lease struct {
	key      string
	path     string
	released bool
}

// acquire claims the lease for a point. It returns the held lease, or
// (nil, holder) when another worker's live lease blocks the point, or
// an error for real filesystem trouble. An expired lease (mtime older
// than the TTL) is stolen: rename-to-tomb first, so exactly one of any
// number of concurrent stealers wins the rename and gets to recreate
// the lease.
func (w *Worker) acquire(key, point string) (*lease, *LeaseStatus, error) {
	path := filepath.Join(w.dir, leasesDir, key+leaseSuffix)
	body, err := json.Marshal(leaseInfo{
		Owner:    w.owner,
		Point:    point,
		PID:      os.Getpid(),
		Host:     w.host,
		Acquired: time.Now().UTC().Format(time.RFC3339),
	})
	if err != nil {
		return nil, nil, err
	}
	// The lease must appear with its body already in place (a reader
	// must never see an empty claim), so it is created by hardlinking a
	// fully-written tmp file: link fails with fs.ErrExist if the point
	// is already claimed, which is the atomic test-and-set.
	tmp := filepath.Join(w.dir, leasesDir, fmt.Sprintf(".claim-%s-%d", w.owner, w.tombs.Add(1)))
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return nil, nil, err
	}
	defer os.Remove(tmp)
	for {
		err := os.Link(tmp, path)
		if err == nil {
			l := &lease{key: key, path: path}
			w.track(l)
			return l, nil, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, nil, err
		}
		fi, serr := os.Stat(path)
		if serr != nil {
			if errors.Is(serr, fs.ErrNotExist) {
				continue // released between link and stat; retry the link
			}
			return nil, nil, serr
		}
		if age := time.Since(fi.ModTime()); age <= w.pol.leaseTTL() {
			var info leaseInfo
			if b, rerr := os.ReadFile(path); rerr == nil {
				_ = json.Unmarshal(b, &info)
			}
			return nil, &LeaseStatus{Point: info.Point, Key: key, Owner: info.Owner, Age: age.Seconds()}, nil
		}
		// Expired: the holder died or hung past its TTL. Steal by
		// renaming the stale file aside; rename succeeds for exactly one
		// stealer (the source vanishes for everyone else), and the
		// winner loops back to claim the now-free name.
		tomb := fmt.Sprintf("%s.stale-%s-%d", path, w.owner, w.tombs.Add(1))
		if rerr := os.Rename(path, tomb); rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // lost the steal race; re-evaluate from the top
			}
			return nil, nil, rerr
		}
		os.Remove(tomb)
	}
}

// release gives the lease back. It verifies ownership first: if the
// lease was stolen while we ran (our heartbeats stalled past the TTL —
// a paged-out worker, a debugger stop), the thief's lease must not be
// removed from under it. The read-then-remove window is benign: the
// worst case is a third worker recomputing a point whose result the
// store deduplicates.
func (w *Worker) release(l *lease) {
	if l == nil || l.released {
		return
	}
	l.released = true
	w.untrack(l)
	b, err := os.ReadFile(l.path)
	if err != nil {
		return // already stolen and completed, or never written
	}
	var info leaseInfo
	if json.Unmarshal(b, &info) == nil && info.Owner != w.owner {
		return // stolen; the thief owns the file now
	}
	os.Remove(l.path)
}

// track registers a held lease with the heartbeater.
func (w *Worker) track(l *lease) {
	w.mu.Lock()
	w.held[l.key] = l.path
	w.mu.Unlock()
}

func (w *Worker) untrack(l *lease) {
	w.mu.Lock()
	delete(w.held, l.key)
	w.mu.Unlock()
}

// heartbeat refreshes the mtimes of the worker registration and every
// held lease. A failed Chtimes on a lease means it was stolen — that
// is not an error here; the in-flight attempt keeps running (its
// result is byte-identical to the thief's) and release will detect the
// theft.
func (w *Worker) heartbeat() {
	now := time.Now()
	os.Chtimes(w.workerFile, now, now)
	w.mu.Lock()
	paths := make([]string, 0, len(w.held))
	for _, p := range w.held {
		paths = append(paths, p)
	}
	w.mu.Unlock()
	for _, p := range paths {
		os.Chtimes(p, now, now)
	}
}

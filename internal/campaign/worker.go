package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Default policy values; see Policy.
const (
	DefaultLeaseTTL    = 30 * time.Second
	DefaultMaxAttempts = 3
	DefaultBaseBackoff = 250 * time.Millisecond
	DefaultMaxBackoff  = 10 * time.Second
	DefaultPoll        = 500 * time.Millisecond
)

// Policy carries the fault-tolerance knobs of one worker. The zero
// value is usable: 30s leases (heartbeated at TTL/4), no watchdog,
// 3 attempts per point, 250ms–10s backoff, 500ms busy-lease polling.
type Policy struct {
	// LeaseTTL is how long a lease may go without a heartbeat before
	// any worker may steal it. It must comfortably exceed Heartbeat and
	// any expected scheduling stall; too short only costs duplicate
	// computation (the store deduplicates), never correctness.
	LeaseTTL time.Duration
	// Heartbeat is the mtime-refresh interval for held leases and the
	// worker registration; <= 0 picks LeaseTTL/4.
	Heartbeat time.Duration
	// Watchdog bounds one attempt of one point: the attempt's context
	// is cancelled after this long (the engine loops poll it every 8192
	// simulated cycles), the failure counts toward quarantine, and the
	// lease is released so another worker can reclaim the point. 0
	// disables the watchdog.
	Watchdog time.Duration
	// MaxAttempts quarantines a point after this many failed attempts,
	// counted across workers through the shared failed/ log; <= 0 picks 3.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// attempts: attempt n waits Base * 2^(n-1) capped at Max, with
	// half-width jitter so colliding workers spread out.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Poll is how often a worker blocked on another worker's live lease
	// re-checks the store and the lease.
	Poll time.Duration
}

func (p Policy) leaseTTL() time.Duration {
	if p.LeaseTTL > 0 {
		return p.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (p Policy) heartbeatEvery() time.Duration {
	if p.Heartbeat > 0 {
		return p.Heartbeat
	}
	return p.leaseTTL() / 4
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (p Policy) baseBackoff() time.Duration {
	if p.BaseBackoff > 0 {
		return p.BaseBackoff
	}
	return DefaultBaseBackoff
}

func (p Policy) maxBackoff() time.Duration {
	if p.MaxBackoff > 0 {
		return p.MaxBackoff
	}
	return DefaultMaxBackoff
}

func (p Policy) poll() time.Duration {
	if p.Poll > 0 {
		return p.Poll
	}
	return DefaultPoll
}

// ErrDrained reports that the worker was asked to drain (SIGTERM):
// points it already held were finished and stored, the rest were left
// for the remaining workers.
var ErrDrained = errors.New("campaign: worker draining, point released for other workers")

// Quarantined reports a poison point: it failed MaxAttempts times
// (across all workers) and was taken out of rotation so the campaign
// can finish everything else. The full failure log, including panic
// payloads with stacks, is in quarantine/<key>.json.
type Quarantined struct {
	Point    string
	Key      string
	Attempts int
	LastErr  string
}

// Error implements error.
func (q *Quarantined) Error() string {
	return fmt.Sprintf("campaign: point %s quarantined after %d failed attempts: %s", q.Point, q.Attempts, q.LastErr)
}

// Worker is one campaign participant. Create with NewWorker, hand to
// harness.Sched.Campaign, Close when the sweep ends. All methods are
// safe for concurrent use by the scheduler's pool goroutines.
type Worker struct {
	dir        string
	owner      string
	host       string
	workerFile string
	pol        Policy

	mu   sync.Mutex
	held map[string]string // lease key -> path, for the heartbeater
	rng  *rand.Rand        // jitter; guarded by mu

	tombs    atomic.Int64 // unique suffixes for claim/steal files
	draining atomic.Bool
	stop     chan struct{}
	done     chan struct{}
}

// NewWorker joins (or starts) the campaign in dir with the given owner
// ID — unique per process, e.g. "host-pid" — creates the campaign
// layout, registers the worker, and starts its heartbeat loop.
func NewWorker(dir, owner string, pol Policy) (*Worker, error) {
	if owner == "" {
		return nil, errors.New("campaign: worker needs a nonempty owner ID")
	}
	if filepath.Base(owner) != owner || owner == "." || owner == ".." {
		return nil, fmt.Errorf("campaign: owner ID %q must be a plain filename component", owner)
	}
	for _, sub := range []string{leasesDir, workersDir, failedDir, quarantineDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	host, _ := os.Hostname()
	w := &Worker{
		dir:        dir,
		owner:      owner,
		host:       host,
		workerFile: filepath.Join(dir, workersDir, owner+".json"),
		pol:        pol,
		held:       map[string]string{},
		rng:        rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid())<<20)),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	body, err := json.Marshal(workerInfo{
		Owner:    owner,
		PID:      os.Getpid(),
		Host:     host,
		Started:  time.Now().UTC().Format(time.RFC3339),
		LeaseTTL: w.pol.leaseTTL().String(),
	})
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(w.workerFile, body); err != nil {
		return nil, err
	}
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.pol.heartbeatEvery())
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.heartbeat()
			}
		}
	}()
	return w, nil
}

// Owner returns the worker's ID (recorded in store records it produces).
func (w *Worker) Owner() string { return w.owner }

// Dir returns the campaign directory.
func (w *Worker) Dir() string { return w.dir }

// Drain puts the worker into graceful-shutdown mode: attempts already
// holding a lease run to completion (and store their results), every
// other Execute returns ErrDrained without claiming anything. Safe to
// call from a signal handler goroutine; idempotent.
func (w *Worker) Drain() { w.draining.Store(true) }

// Draining reports whether Drain was called.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Close stops the heartbeater and removes the worker registration.
// Leases still held (there are none after a clean sweep) keep their
// files and expire on their own.
func (w *Worker) Close() error {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
	return os.Remove(w.workerFile)
}

// Task is one sweep point handed to Execute.
type Task struct {
	// Key is the point's canonical store key — the lease identity.
	Key string
	// Point is the human-readable point key, for status and failure logs.
	Point string
	// Cached reports whether the point's result is already available
	// (typically: consult the shared store, refreshing it to see other
	// workers' appends). Called before every claim attempt and while
	// waiting out another worker's lease. nil means never cached.
	Cached func() bool
	// Attempt computes and stores the point. The context carries the
	// watchdog deadline on top of the sweep context; the attempt must
	// poll it (the harness engine loops do). A panic must be captured
	// by the caller and returned as an error so it is retried and
	// eventually quarantined rather than killing the pool.
	Attempt func(ctx context.Context) error
}

// Execute runs one point under the campaign protocol: return early if
// the result is already available, otherwise claim the lease (waiting
// out or stealing other workers' leases as their heartbeats dictate),
// run the attempt under the watchdog, back off and retry on failure,
// and quarantine the point once it has failed MaxAttempts times
// anywhere in the campaign. The lease is released between retries so
// that a faster worker may take over, and heartbeats cover the whole
// attempt so a long point is never stolen from a live worker.
func (w *Worker) Execute(ctx context.Context, t Task) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if t.Cached != nil && t.Cached() {
			return nil
		}
		if q, err := w.readQuarantine(t.Key); err != nil {
			return err
		} else if q != nil {
			return q
		}
		if w.draining.Load() {
			return ErrDrained
		}
		l, holder, err := w.acquire(t.Key, t.Point)
		if err != nil {
			return err
		}
		if l == nil {
			_ = holder // attribution available to a future verbose mode
			if err := w.sleep(ctx, w.pol.poll()); err != nil {
				return err
			}
			continue
		}
		err, final := w.runLeased(ctx, t, l)
		if final {
			return err
		}
	}
}

// runLeased runs one attempt under a held lease. final=false means a
// retryable failure: the lease has been released and the backoff has
// been slept, and the caller should rejoin the claim loop (where
// another worker may have taken over — Cached picks up its result).
func (w *Worker) runLeased(ctx context.Context, t Task, l *lease) (err error, final bool) {
	defer w.release(l) // idempotent; covers every return path
	actx, cancel := ctx, context.CancelFunc(func() {})
	if w.pol.Watchdog > 0 {
		actx, cancel = context.WithTimeout(ctx, w.pol.Watchdog)
	}
	aerr := t.Attempt(actx)
	cancel()
	if aerr == nil {
		w.clearFailure(t.Key)
		return nil, true
	}
	if ctx.Err() != nil {
		// The sweep itself was cancelled (Ctrl-C, first fatal error) —
		// not a point failure; don't burn an attempt on it.
		return aerr, true
	}
	attempts := w.priorAttempts(t.Key) + 1
	f := w.recordFailure(t, attempts, aerr)
	if attempts >= w.pol.maxAttempts() {
		if qerr := w.quarantine(f); qerr != nil {
			return qerr, true
		}
		return &Quarantined{Point: t.Point, Key: t.Key, Attempts: attempts, LastErr: firstLine(f.LastErr)}, true
	}
	w.release(l) // free the point for other workers before backing off
	if serr := w.sleep(ctx, w.backoff(attempts)); serr != nil {
		return serr, true
	}
	return nil, false
}

// backoff returns the post-failure wait before attempt n+1:
// Base * 2^(n-1) capped at Max, jittered to [1/2, 1] of that.
func (w *Worker) backoff(attempts int) time.Duration {
	d := w.pol.baseBackoff()
	for i := 1; i < attempts && d < w.pol.maxBackoff(); i++ {
		d *= 2
	}
	if d > w.pol.maxBackoff() {
		d = w.pol.maxBackoff()
	}
	w.mu.Lock()
	jit := time.Duration(w.rng.Int63n(int64(d)/2 + 1))
	w.mu.Unlock()
	return d - jit
}

// sleep waits d or until the context dies.
func (w *Worker) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (w *Worker) failedPath(key string) string {
	return filepath.Join(w.dir, failedDir, key+".json")
}

func (w *Worker) quarantinePath(key string) string {
	return filepath.Join(w.dir, quarantineDir, key+".json")
}

// readQuarantine returns the point's quarantine verdict, if any.
func (w *Worker) readQuarantine(key string) (*Quarantined, error) {
	b, err := os.ReadFile(w.quarantinePath(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var f Failure
	if err := json.Unmarshal(b, &f); err != nil {
		// A torn quarantine write (killed mid-rename is impossible, but a
		// full disk is not): treat as not quarantined and let the retry
		// path rewrite it.
		return nil, nil
	}
	return &Quarantined{Point: f.Point, Key: f.Key, Attempts: f.Attempts, LastErr: firstLine(f.LastErr)}, nil
}

// priorAttempts reads the shared attempt count for a point, so retries
// accumulate across workers and reclaims.
func (w *Worker) priorAttempts(key string) int {
	b, err := os.ReadFile(w.failedPath(key))
	if err != nil {
		return 0
	}
	var f Failure
	if json.Unmarshal(b, &f) != nil {
		return 0
	}
	return f.Attempts
}

// recordFailure updates the point's attempt log (held under the lease,
// so there is no write contention).
func (w *Worker) recordFailure(t Task, attempts int, aerr error) Failure {
	f := Failure{Point: t.Point, Key: t.Key}
	if b, err := os.ReadFile(w.failedPath(t.Key)); err == nil {
		_ = json.Unmarshal(b, &f)
	}
	f.Attempts = attempts
	f.LastErr = aerr.Error()
	f.Errors = append([]string{aerr.Error()}, f.Errors...)
	if len(f.Errors) > maxErrorHistory {
		f.Errors = f.Errors[:maxErrorHistory]
	}
	f.Owner = w.owner
	f.Updated = time.Now().UTC().Format(time.RFC3339)
	if b, err := json.Marshal(f); err == nil {
		_ = writeFileAtomic(w.failedPath(t.Key), b)
	}
	return f
}

// clearFailure forgets a point's attempt log after a success.
func (w *Worker) clearFailure(key string) {
	os.Remove(w.failedPath(key))
}

// quarantine moves a point's failure log into quarantine, taking it
// out of rotation for every worker.
func (w *Worker) quarantine(f Failure) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(w.quarantinePath(f.Key), b); err != nil {
		return err
	}
	w.clearFailure(f.Key)
	return nil
}

// Liveness summarizes the campaign's workers for progress lines: how
// many have a fresh heartbeat and the oldest heartbeat age among them.
func (w *Worker) Liveness() (live int, oldest time.Duration) {
	st, err := Scan(w.dir)
	if err != nil {
		return 0, 0
	}
	for _, ws := range st.Workers {
		if !ws.Live {
			continue
		}
		live++
		if age := time.Duration(ws.HeartbeatAge * float64(time.Second)); age > oldest {
			oldest = age
		}
	}
	return live, oldest
}

// firstLine trims an error message (panic payloads carry stacks) to
// its first line for compact summaries.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

package main

import (
	"fmt"
	"os"

	"diam2/internal/harness"
	"diam2/internal/telemetry"
)

// telOpts carries the -telemetry/-trace-out/-heatmap/-http flag values.
type telOpts struct {
	enabled  bool
	traceOut string
	heatmap  string
	httpAddr string
	// campaign disables per-point collection (campaign workers rely on
	// store lookups, which telemetry bypasses) while still serving the
	// -http observability endpoints, including /campaign.
	campaign bool
}

// setup wires a telemetry sink (and, with -http, a live registry) into
// the scale, returning the sink (nil when disabled or in campaign
// mode), the registry (nil without -http) and an HTTP teardown
// function.
func (o telOpts) setup(sc *harness.Scale) (*harness.TelemetrySink, *telemetry.Registry, func(), error) {
	if !o.enabled {
		return nil, nil, func() {}, nil
	}
	var sink *harness.TelemetrySink
	if !o.campaign {
		sink = &harness.TelemetrySink{}
		sc.Telemetry = harness.TelemetryPlan{Sink: sink}
	}
	shutdown := func() {}
	var reg *telemetry.Registry
	if o.httpAddr != "" {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar()
		if sink != nil {
			sc.Telemetry.Registry = reg
		}
		addr, stop, err := reg.Serve(o.httpAddr)
		if err != nil {
			return nil, nil, nil, err
		}
		endpoints := "/telemetry (pprof under /debug/pprof/)"
		if o.campaign {
			endpoints = "/campaign and /telemetry (pprof under /debug/pprof/)"
		}
		fmt.Fprintf(os.Stderr, "telemetry: live at http://%s%s\n", addr, endpoints)
		shutdown = func() { _ = stop() }
	}
	return sink, reg, shutdown, nil
}

// finish exports the sweep's accumulated telemetry: the JSONL event
// trace, the aggregated heatmap CSV, and a one-line stderr summary.
func (o telOpts) finish(sink *harness.TelemetrySink) error {
	if sink == nil {
		return nil
	}
	tot := sink.Totals()
	fmt.Fprintf(os.Stderr, "telemetry: %d points, injected=%d delivered=%d dropped=%d link-flits=%d\n",
		tot.Points, tot.Injected, tot.Delivered, tot.Dropped, tot.LinkFlits)
	write := func(path, what string, render func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: %s written to %s\n", what, path)
		return nil
	}
	if err := write(o.traceOut, "event trace", func(f *os.File) error { return sink.WriteTrace(f) }); err != nil {
		return err
	}
	return write(o.heatmap, "congestion heatmap", func(f *os.File) error { return sink.WriteHeatmapCSV(f) })
}

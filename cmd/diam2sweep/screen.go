package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"diam2/internal/harness"
)

// screenOpts carries the -screen flag group: the analytic screening
// tier and its simulator escalation pass.
type screenOpts struct {
	enabled bool    // -screen
	band    float64 // -escalate-band (0: screen only)
	grid    int     // -screen-grid (0: DefaultLoads ladder)
	check   bool    // -screen-check
}

// runScreen drives the screening tier: answer the full grid
// analytically, print the summary, then (with -escalate-band) pick the
// near-saturation and family-crossover neighborhoods and re-run them
// through the flit-level simulator, scoring each against the recorded
// calibration tolerances. With -screen-check, any escalated point
// outside its recorded tolerance fails the run — the CI smoke gate.
func runScreen(sc harness.Scale, presets []harness.Preset, o screenOpts, csvDir string) error {
	spec := harness.ScreenSpec{}
	if o.grid > 0 {
		spec.Loads = harness.ScreenGridLoads(o.grid)
	}
	start := time.Now()
	points, err := harness.ScreenSweep(presets, spec, sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "diam2sweep: screen: %d analytic points in %s\n",
		len(points), time.Since(start).Round(time.Millisecond))
	if err := emitTable(harness.ScreenTable(points), csvDir, "screen"); err != nil {
		return err
	}
	if o.band <= 0 {
		return nil
	}
	picks := harness.SelectEscalations(points, o.band)
	fmt.Fprintf(os.Stderr, "diam2sweep: escalating %d of %d screened points (band=%.2f)\n",
		len(picks), len(points), o.band)
	escs, err := harness.EscalateSweep(picks, presets, sc)
	if err != nil {
		return err
	}
	if err := emitTable(harness.EscalationTable(escs), csvDir, "escalate"); err != nil {
		return err
	}
	if o.check {
		bad := 0
		for _, e := range escs {
			if e.Recorded && !e.Within {
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("screen check: %d escalated point(s) outside their recorded calibration tolerance", bad)
		}
		fmt.Fprintf(os.Stderr, "diam2sweep: screen check: all %d escalated points within recorded tolerances\n", len(escs))
	}
	return nil
}

// emitTable renders a screening table to stdout and, with -csvdir, to
// <dir>/<name>.csv.
func emitTable(t *harness.Table, csvDir, name string) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	if err := t.RenderCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

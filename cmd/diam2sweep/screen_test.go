package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diam2/internal/harness"
)

// TestRunScreenScreenOnly: -screen without -escalate-band answers the
// grid analytically, renders the summary table, and writes the CSV
// when -csvdir is set.
func TestRunScreenScreenOnly(t *testing.T) {
	dir := t.TempDir()
	o := screenOpts{enabled: true, grid: 5}
	if err := runScreen(harness.QuickScale(), harness.SmallPresets(), o, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "screen.csv"))
	if err != nil {
		t.Fatal(err)
	}
	// Header + one row per (preset, alg, pat) combo: 3 x 2 x 2.
	if lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1; lines != 13 {
		t.Errorf("screen.csv has %d lines, want 13 (header + 12 combos):\n%s", lines, data)
	}
	// Without -csvdir only the stdout table is rendered.
	if err := runScreen(harness.QuickScale(), harness.SmallPresets()[:1], o, ""); err != nil {
		t.Fatal(err)
	}
}

// TestRunScreenEscalateCheck: a tight band over one preset escalates
// the near-saturation points through the simulator and -screen-check
// passes (these loads are a subset of the grid scripts/screen_smoke.sh
// gates in CI).
func TestRunScreenEscalateCheck(t *testing.T) {
	dir := t.TempDir()
	o := screenOpts{enabled: true, grid: 4, band: 0.05, check: true}
	if err := runScreen(harness.QuickScale(), harness.SmallPresets()[:1], o, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "escalate.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "\n") < 2 {
		t.Errorf("escalation pass selected no points:\n%s", data)
	}
}

// Command diam2sweep regenerates the paper's figures: it runs the
// full parameter sweep behind a figure and prints the corresponding
// data table.
//
// Usage:
//
//	diam2sweep -fig 6a            # oblivious routing, uniform traffic
//	diam2sweep -fig 6b            # oblivious routing, worst-case
//	diam2sweep -fig 7             # SF-A sweeps (nI, cSF)
//	diam2sweep -fig 8             # SF-ATh sweeps
//	diam2sweep -fig 9             # MLFM-A sweeps
//	diam2sweep -fig 10            # OFT-A sweeps
//	diam2sweep -fig 11            # MLFM-ATh sweeps
//	diam2sweep -fig 12            # OFT-ATh sweeps
//	diam2sweep -fig 13            # all-to-all exchange
//	diam2sweep -fig 14            # nearest-neighbor exchange
//	diam2sweep -fig resilience    # throughput vs. failed-link fraction
//	diam2sweep -fig all           # every paper figure (not resilience)
//
// Screening tier: -screen answers the oblivious sweep grid with the
// analytic fluid model instead of the simulator — thousands of
// (topology, routing, pattern, load) points in seconds, stored under
// their own fluid-tier keys. -screen-grid N densifies the offered-load
// ladder to N evenly spaced loads. -escalate-band B then re-simulates
// just the interesting neighborhoods (loads within B of the predicted
// saturation, plus family-crossover brackets) at flit-level fidelity,
// and -screen-check fails the run if any escalated point's fluid
// estimate misses its recorded calibration tolerance (the CI smoke
// gate). See EXPERIMENTS.md, "Screening tier".
//
// By default the sweep runs at "quick" scale (reduced instances and
// run lengths, same code paths); pass -scale paper for the Section
// 4.1 configurations — expect hours of CPU time for the full set.
//
// Sweeps fan their independent simulation points out across a worker
// pool; -j sets its size (default: all CPUs) and -progress reports
// each completed point on stderr. Results are byte-identical for any
// -j: every point's random stream is derived from (seed, point key),
// never from scheduling order. Ctrl-C cancels the sweep promptly.
//
// -cores is the other, orthogonal parallelism axis: it shards the
// routers of every *individual simulation* across that many threads of
// the sharded engine (-j parallelizes *across* points, -cores *within*
// one). Figure sweeps have many points, so prefer -j and leave -cores
// at 1; -cores pays off only for few huge points. Sharded results
// follow their own determinism contract (identical for a fixed
// partition at any thread count) but are not bit-identical to serial
// results, so the store keys -cores runs separately and figures mix
// the two engines only if you do. See DESIGN.md §14.
//
// Resumable campaigns: -store DIR opens (creating if needed) a
// content-addressed result store and consults it before every sweep
// point — an interrupted campaign rerun with the same flags recomputes
// only the missing points and emits byte-identical output to a cold
// serial run. Keys cover the fully-resolved point configuration plus
// the engine schema version, so results from an older simulator are
// never reused. -force recomputes everything (and refreshes the
// store). Inspect stores with diam2store (list, verify, diff, gc).
// See EXPERIMENTS.md, "Resumable campaigns".
//
// Distributed campaigns: -campaign joins the -store directory as one
// of several cooperating worker processes. Sweep points are claimed
// through heartbeated lease files (a killed worker's leases expire
// after -lease-ttl and are reclaimed), failed points retry with
// exponential backoff and are quarantined after -retries attempts,
// -watchdog bounds a single attempt, and SIGTERM drains the worker
// gracefully (finish leased points, release the rest, exit code 3).
// Workers may be killed and restarted at any time; the merged store
// renders byte-identically to a single-process run. Observe a campaign
// with diam2campaign or the /campaign endpoint of -http. See README,
// "Distributed campaigns".
//
// Profiling: -cpuprofile/-memprofile write pprof profiles of the whole
// sweep, -traceprofile a runtime execution trace (worker scheduling
// and -cores barrier waits), and the stderr summary reports the
// achieved simulation rate (sim-cycles and cycles/s). See README,
// "Profiling the engine".
//
// Observability: -telemetry attaches a collector to every sweep point;
// -trace-out FILE exports the per-point flight-recorder events as
// JSONL, -heatmap FILE writes the aggregated per-link congestion
// heatmap as CSV, and -http ADDR serves /telemetry, /debug/vars and
// /debug/pprof live while the sweep runs. Telemetry output is
// byte-identical for any -j. See README, "Observability".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"diam2/internal/buildinfo"
	"diam2/internal/campaign"
	"diam2/internal/harness"
	"diam2/internal/sim"
	"diam2/internal/store"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 6a|6b|7|8|9|10|11|12|13|14|resilience|all")
		scaleName = flag.String("scale", "quick", "scale: quick|medium|paper")
		seed      = flag.Int64("seed", 1, "random seed")
		plotDir   = flag.String("plotdir", "", "write SVG charts for figures with curves into this directory")
		ascii     = flag.Bool("ascii", false, "also render ASCII charts to stdout")
		csvDir    = flag.String("csvdir", "", "also write each figure's data as CSV into this directory")
		jobs      = flag.Int("j", 0, "sweep worker-pool size: independent points in parallel (0: all CPUs, 1: serial); orthogonal to -cores")
		cores     = flag.Int("cores", 1, "threads *within* each simulation (sharded engine; 1: serial engine); orthogonal to -j, not bit-identical to serial")
		progress  = flag.Bool("progress", false, "report each completed sweep point on stderr")
		storeDir  = flag.String("store", "", "content-addressed result store: reuse completed points, record the rest (resumes interrupted campaigns)")
		force     = flag.Bool("force", false, "with -store, recompute every point (fresh results still recorded)")
		version   = flag.Bool("version", false, "print build/version info and exit")

		screen      = flag.Bool("screen", false, "screening tier: answer the oblivious sweep grid analytically (fluid model) instead of regenerating a figure")
		screenGrid  = flag.Int("screen-grid", 0, "with -screen, offered-load ladder size, evenly spaced in (0,1] (0: the default figure ladder)")
		escBand     = flag.Float64("escalate-band", 0, "with -screen, re-simulate screened points within this relative band of their predicted saturation, plus family-crossover brackets (0: screen only)")
		screenCheck = flag.Bool("screen-check", false, "with -screen and -escalate-band, fail if any escalated point's fluid estimate misses its recorded calibration tolerance")

		campaignOn = flag.Bool("campaign", false, "join -store as one of several cooperating worker processes (leases, heartbeats, retries; see README, \"Distributed campaigns\")")
		workerID   = flag.String("worker-id", "", "campaign worker ID, unique per live worker (default: host-pid)")
		leaseTTL   = flag.Duration("lease-ttl", campaign.DefaultLeaseTTL, "campaign lease time-to-live: a worker silent this long loses its points to the others")
		watchdogD  = flag.Duration("watchdog", 0, "campaign per-attempt timeout: a point attempt running longer is cancelled, retried and eventually quarantined (0: off)")
		retries    = flag.Int("retries", campaign.DefaultMaxAttempts, "campaign attempts per point (across all workers) before quarantine")
		backoffD   = flag.Duration("backoff", campaign.DefaultBaseBackoff, "campaign base backoff after a failed attempt (doubles per attempt, jittered)")

		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof allocation profile at exit to this file")
		traceProfile = flag.String("traceprofile", "", "write a runtime execution trace of the sweep to this file (go tool trace; shows -cores barrier waits and -j worker scheduling)")

		telemetryOn = flag.Bool("telemetry", false, "collect unified telemetry for every sweep point")
		traceOut    = flag.String("trace-out", "", "write the per-point flight-recorder traces as JSONL to this file (implies -telemetry)")
		heatmapOut  = flag.String("heatmap", "", "write the aggregated congestion heatmap as CSV to this file (implies -telemetry)")
		httpAddr    = flag.String("http", "", "serve /telemetry, /debug/vars and /debug/pprof on this address, e.g. :6060 (implies -telemetry)")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("diam2sweep"))
		fmt.Printf("engine schema %d, store schema %d\n", sim.EngineSchema, store.Schema)
		return
	}
	if *fig == "" && !*screen {
		flag.Usage()
		os.Exit(2)
	}
	if *fig != "" && *screen {
		fmt.Fprintln(os.Stderr, "diam2sweep: -screen replaces -fig (the screening tier covers the whole oblivious grid); pass one or the other")
		os.Exit(2)
	}
	if *campaignOn {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "diam2sweep: -campaign requires -store (workers coordinate through the store directory)")
			os.Exit(2)
		}
		if *telemetryOn || *traceOut != "" || *heatmapOut != "" {
			fmt.Fprintln(os.Stderr, "diam2sweep: -campaign is incompatible with telemetry collection (telemetry bypasses the store lookups campaigns depend on; run a dedicated -telemetry sweep instead)")
			os.Exit(2)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stopProf, err := harness.StartProfiles(*cpuProfile, *memProfile, *traceProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diam2sweep:", err)
		os.Exit(1)
	}
	tel := telOpts{
		enabled:  *telemetryOn || *traceOut != "" || *heatmapOut != "" || *httpAddr != "",
		traceOut: *traceOut,
		heatmap:  *heatmapOut,
		httpAddr: *httpAddr,
		campaign: *campaignOn,
	}
	camp := campaignOpts{
		enabled:  *campaignOn,
		workerID: *workerID,
		leaseTTL: *leaseTTL,
		watchdog: *watchdogD,
		retries:  *retries,
		backoff:  *backoffD,
	}
	scr := screenOpts{
		enabled: *screen,
		band:    *escBand,
		grid:    *screenGrid,
		check:   *screenCheck,
	}
	runErr := run(ctx, *fig, *scaleName, *seed, *plotDir, *ascii, *csvDir, *jobs, *cores, *progress, tel, *storeDir, *force, camp, scr)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "diam2sweep:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "diam2sweep:", runErr)
		if errors.Is(runErr, campaign.ErrDrained) {
			// Graceful drain is a distinct outcome: this worker did its
			// part and stopped on request; the campaign itself goes on.
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// campaignOpts carries the -campaign flag group.
type campaignOpts struct {
	enabled                     bool
	workerID                    string
	leaseTTL, watchdog, backoff time.Duration
	retries                     int
}

func run(ctx context.Context, fig, scaleName string, seed int64, plotDir string, ascii bool, csvDir string, jobs, cores int, progress bool, tel telOpts, storeDir string, force bool, camp campaignOpts, scr screenOpts) error {
	for _, dir := range []string{plotDir, csvDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}
	var sc harness.Scale
	var presets []harness.Preset
	switch scaleName {
	case "quick":
		sc = harness.QuickScale()
		presets = harness.SmallPresets()
	case "medium":
		sc = harness.MediumScale()
		presets = harness.SmallPresets()
	case "paper":
		sc = harness.PaperScale()
		presets = harness.PaperPresets()
	default:
		return fmt.Errorf("unknown scale %q (quick|medium|paper)", scaleName)
	}
	sc.Seed = seed
	sc.Cores = cores
	if cores > 1 {
		fmt.Fprintf(os.Stderr, "diam2sweep: sharded engine: %d threads per point (-cores), orthogonal to the -j point pool; results are keyed separately from serial runs\n", cores)
	}

	// Wire the experiment scheduler: worker pool, cancellation, and —
	// for the end-of-run summary — the summed simulation time of the
	// points, accumulated from the scheduler's progress callback.
	// Campaign progress lines append worker liveness, sampled at most
	// once a second (each sample scans the campaign directory).
	var worker *campaign.Worker
	var livMu sync.Mutex
	var livAt time.Time
	var livLine string
	liveness := func() string {
		if worker == nil {
			return ""
		}
		livMu.Lock()
		defer livMu.Unlock()
		if livLine == "" || time.Since(livAt) >= time.Second {
			n, oldest := worker.Liveness()
			livLine = fmt.Sprintf(" workers=%d oldest-hb=%s", n, oldest.Round(100*time.Millisecond))
			livAt = time.Now()
		}
		return livLine
	}
	var busy atomic.Int64
	// The progress line carries both parallelism axes: done/total counts
	// points flowing through the -j pool, and the engine tag marks runs
	// whose single point is itself sharded across -cores threads.
	engTag := ""
	if cores > 1 {
		engTag = fmt.Sprintf(" [engine: %d-core sharded]", cores)
	}
	sc.Sched = harness.Sched{
		Workers: jobs,
		Ctx:     ctx,
		OnPoint: func(done, total int, key string, elapsed time.Duration) {
			busy.Add(int64(elapsed))
			if progress {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s (%s)%s%s\n", done, total, key, elapsed.Round(time.Millisecond), engTag, liveness())
			}
		},
	}
	sink, reg, telShutdown, err := tel.setup(&sc)
	if err != nil {
		return err
	}
	defer telShutdown()
	var st *store.Store
	if storeDir != "" {
		if camp.enabled {
			st, err = store.OpenCLICampaign(storeDir, "diam2sweep")
		} else {
			st, err = store.OpenCLI(storeDir, "diam2sweep")
		}
		if err != nil {
			return err
		}
		defer func() {
			fmt.Fprintln(os.Stderr, "diam2sweep:", st.Summary())
			if cerr := st.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "diam2sweep: store close:", cerr)
			}
		}()
		sc.Sched.Store = st
		sc.Sched.Force = force
		if sink != nil {
			fmt.Fprintln(os.Stderr, "diam2sweep: telemetry collection recomputes every point (store lookups bypassed, results still recorded)")
		}
	}
	if camp.enabled {
		owner := camp.workerID
		if owner == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			owner = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		worker, err = campaign.NewWorker(campaign.DirFor(storeDir), owner, campaign.Policy{
			LeaseTTL:    camp.leaseTTL,
			Watchdog:    camp.watchdog,
			MaxAttempts: camp.retries,
			BaseBackoff: camp.backoff,
		})
		if err != nil {
			return err
		}
		defer func() { _ = worker.Close() }()
		sc.Sched.Campaign = worker
		fmt.Fprintf(os.Stderr, "diam2sweep: campaign worker %s joined %s\n", owner, worker.Dir())
		// Record what this campaign computes (first submitter wins; a
		// coordinator's explicit submit may already have).
		_ = campaign.WriteManifest(worker.Dir(), campaign.Manifest{
			Name:      fmt.Sprintf("fig %s @ %s", fig, scaleName),
			Args:      os.Args[1:],
			Created:   time.Now().UTC().Format(time.RFC3339),
			CreatedBy: "diam2sweep " + buildinfo.Version(),
		})
		// SIGTERM drains gracefully: leased points finish and store,
		// unclaimed points stay for the other workers. SIGINT (Ctrl-C)
		// keeps its hard-cancel meaning via the NotifyContext above.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM)
		defer signal.Stop(sigc)
		go func() {
			if _, ok := <-sigc; ok {
				fmt.Fprintln(os.Stderr, "diam2sweep: SIGTERM: draining (finishing leased points, releasing the rest)")
				worker.Drain()
			}
		}()
		if reg != nil {
			dir := worker.Dir()
			reg.SetCampaign(func() any {
				stat, err := campaign.Scan(dir)
				if err != nil {
					return map[string]string{"error": err.Error()}
				}
				return stat
			})
		}
	}
	workers := jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	defer func() {
		// point-time sums each point's own elapsed time; the ratio to
		// wall time is the achieved concurrency. (On a machine with
		// fewer cores than workers, time-slicing inflates per-point
		// elapsed, so this reads as occupancy, not as a true speedup.)
		wall := time.Since(start)
		summary := fmt.Sprintf("workers=%d wall=%s point-time=%s", workers,
			wall.Round(time.Millisecond), time.Duration(busy.Load()).Round(time.Millisecond))
		if wall > 0 {
			summary += fmt.Sprintf(" concurrency=%.2fx", float64(busy.Load())/float64(wall))
		}
		if cyc := harness.SimulatedCycles(); cyc > 0 && wall > 0 {
			summary += fmt.Sprintf(" sim-cycles=%d (%.0f cycles/s)", cyc, float64(cyc)/wall.Seconds())
		}
		fmt.Fprintln(os.Stderr, "diam2sweep:", summary)
	}()

	if scr.enabled {
		if err := runScreen(sc, presets, scr, csvDir); err != nil {
			return err
		}
		return tel.finish(sink)
	}

	// Preset lookup by family for the per-topology adaptive figures.
	byFamily := map[string]harness.Preset{}
	for _, p := range presets {
		switch {
		case p.SFStyle:
			if _, ok := byFamily["SF"]; !ok { // first SF preset (p = floor)
				byFamily["SF"] = p
			}
		case p.Name[:4] == "MLFM":
			byFamily["MLFM"] = p
		default:
			byFamily["OFT"] = p
		}
	}
	loads := harness.DefaultLoads()
	// The paper's sweep values; the medium reproduction trims the
	// grid to keep the full figure set to about an hour of CPU.
	sweepNI := []int{1, 2, 4, 8}
	sweepC := []float64{0.5, 1, 2, 4}
	if scaleName == "medium" {
		loads = []float64{0.1, 0.5, 0.9, 1.0}
		sweepNI = []int{1, 4}
		sweepC = []float64{1, 2}
	}

	figName := ""
	render := func(t *harness.Table, err error) error {
		if err != nil {
			return err
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		if csvDir != "" {
			f, err := os.Create(filepath.Join(csvDir, "fig"+figName+".csv"))
			if err != nil {
				return err
			}
			if err := t.RenderCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		for i, ch := range t.Charts {
			if ascii {
				if err := ch.RenderASCII(os.Stdout, 72, 18); err != nil {
					return err
				}
			}
			if plotDir == "" {
				continue
			}
			name := filepath.Join(plotDir, fmt.Sprintf("fig%s_%d.svg", figName, i))
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := ch.RenderSVG(f, 640, 420); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", name)
		}
		return nil
	}
	adaptive := func(family string, kind harness.AlgKind, fixedNI int, fixedC float64) error {
		p, ok := byFamily[family]
		if !ok {
			return fmt.Errorf("no %s preset at this scale", family)
		}
		return render(harness.AdaptiveSweep(p, kind, sweepNI, sweepC, fixedNI, fixedC, loads, sc))
	}

	figs := []string{fig}
	if fig == "all" {
		figs = []string{"6a", "6b", "7", "8", "9", "10", "11", "12", "13", "14"}
	}
	for _, f := range figs {
		var err error
		figName = f
		switch f {
		case "6a":
			err = render(harness.Fig6Oblivious(presets, harness.PatUNI, loads, sc))
		case "6b":
			err = render(harness.Fig6Oblivious(presets, harness.PatWC, loads, sc))
		case "7":
			err = adaptive("SF", harness.AlgA, 4, 1)
		case "8":
			err = adaptive("SF", harness.AlgATh, 4, 1)
		case "9":
			err = adaptive("MLFM", harness.AlgA, 5, 2)
		case "10":
			err = adaptive("OFT", harness.AlgA, 1, 2)
		case "11":
			err = adaptive("MLFM", harness.AlgATh, 5, 2)
		case "12":
			err = adaptive("OFT", harness.AlgATh, 1, 2)
		case "13":
			err = render(harness.FigExchange(presets, harness.ExA2A, sc))
		case "14":
			err = render(harness.FigExchange(presets, harness.ExNN, sc))
		case "resilience":
			err = render(harness.FigResilience(presets,
				[]harness.AlgKind{harness.AlgMIN, harness.AlgINR, harness.AlgA},
				[]harness.PatternKind{harness.PatUNI, harness.PatWC},
				harness.DefaultFailureFractions(), 0.5, sc))
		default:
			err = fmt.Errorf("unknown figure %q", f)
		}
		if err != nil {
			return fmt.Errorf("fig %s: %w", f, err)
		}
	}
	return tel.finish(sink)
}

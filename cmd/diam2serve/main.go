// Command diam2serve answers design-space queries over HTTP: which
// (topology, routing, pattern, load) combination performs how, in
// milliseconds, from a three-tier resolution path — content-addressed
// store cache, analytic fluid estimate, and (when the escalation
// policy decides the point deserves fidelity) a background flit-level
// simulation the client polls via an escalation ticket.
//
// Usage:
//
//	diam2serve -http :8080 -store DIR [-scale quick] [-seed 1] \
//	    [-escalate-band 0.15] [-grid 30] [-queue 64] [-esc-workers 1] \
//	    [-campaign] [-worker-id NAME] [-drain-timeout 30s]
//
// The server shares its store keys with diam2sweep: points a sweep or
// screening run already computed answer from cache byte-identically,
// and every fluid estimate or escalation the server computes is
// recorded for any later sweep. -scale and -seed must match the
// sweeps' for the keys to align.
//
// With -campaign the store is opened in shared (campaign) mode and
// escalations run under the lease protocol, so external `diam2sweep
// -campaign` workers against the same store directory can absorb the
// simulation load alongside the server's own workers.
//
// On SIGTERM/SIGINT the server drains: in-flight HTTP queries finish,
// queued escalations get -drain-timeout to complete (their results
// still land in the store), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diam2/internal/buildinfo"
	"diam2/internal/campaign"
	"diam2/internal/harness"
	"diam2/internal/serve"
	"diam2/internal/sim"
	"diam2/internal/store"
	"diam2/internal/telemetry"
)

func main() {
	var (
		httpAddr   = flag.String("http", "", "listen address, e.g. :8080 (required)")
		storeDir   = flag.String("store", "", "content-addressed result store directory (required; created if absent)")
		scaleName  = flag.String("scale", "quick", "experiment scale: quick|medium|paper (must match the sweeps sharing the store)")
		seed       = flag.Int64("seed", 1, "base seed (must match the sweeps sharing the store)")
		band       = flag.Float64("escalate-band", 0.15, "escalation band around predicted saturation; 0 disables escalation")
		grid       = flag.Int("grid", 30, "decision-ladder size for the escalation policy")
		queueMax   = flag.Int("queue", 64, "admitted-query bound; excess answered 429 + Retry-After")
		escWorkers = flag.Int("esc-workers", 1, "background escalation worker count")
		campMode   = flag.Bool("campaign", false, "open the store shared and run escalations under the campaign lease protocol")
		workerID   = flag.String("worker-id", "", "campaign worker name (default host-pid)")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "how long queued escalations get to finish on shutdown")
		version    = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("diam2serve"))
		fmt.Printf("engine schema %d, store schema %d\n", sim.EngineSchema, store.Schema)
		return
	}
	if *httpAddr == "" || *storeDir == "" {
		fmt.Fprintln(os.Stderr, "usage: diam2serve -http ADDR -store DIR [flags]")
		os.Exit(2)
	}
	if err := run(*httpAddr, *storeDir, *scaleName, *seed, *band, *grid, *queueMax, *escWorkers, *campMode, *workerID, *drainTO); err != nil {
		fmt.Fprintln(os.Stderr, "diam2serve:", err)
		os.Exit(1)
	}
}

func scaleFor(scaleName string, seed int64) (harness.Scale, []harness.Preset, error) {
	var sc harness.Scale
	var presets []harness.Preset
	switch scaleName {
	case "quick":
		sc = harness.QuickScale()
		presets = harness.SmallPresets()
	case "medium":
		sc = harness.MediumScale()
		presets = harness.SmallPresets()
	case "paper":
		sc = harness.PaperScale()
		presets = harness.PaperPresets()
	default:
		return sc, nil, fmt.Errorf("unknown scale %q (quick|medium|paper)", scaleName)
	}
	sc.Seed = seed
	return sc, presets, nil
}

func run(httpAddr, storeDir, scaleName string, seed int64, band float64, grid, queueMax, escWorkers int, campMode bool, workerID string, drainTO time.Duration) error {
	sc, presets, err := scaleFor(scaleName, seed)
	if err != nil {
		return err
	}

	var st *store.Store
	if campMode {
		st, err = store.OpenCLICampaign(storeDir, "diam2serve")
	} else {
		st, err = store.OpenCLI(storeDir, "diam2serve")
	}
	if err != nil {
		return err
	}
	defer func() {
		fmt.Fprintln(os.Stderr, "diam2serve:", st.Summary())
		if cerr := st.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "diam2serve: store close:", cerr)
		}
	}()

	reg := telemetry.NewRegistry()
	reg.PublishExpvar()

	var worker *campaign.Worker
	if campMode {
		owner := workerID
		if owner == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "serve"
			}
			owner = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		worker, err = campaign.NewWorker(campaign.DirFor(storeDir), owner, campaign.Policy{})
		if err != nil {
			return err
		}
		defer func() { _ = worker.Close() }()
		dir := worker.Dir()
		reg.SetCampaign(func() any {
			cst, err := campaign.Scan(dir)
			if err != nil {
				return map[string]string{"error": err.Error()}
			}
			return cst
		})
		fmt.Fprintf(os.Stderr, "diam2serve: campaign worker %s joined %s\n", owner, dir)
	}

	srv, err := serve.New(serve.Config{
		Presets:    presets,
		Scale:      sc,
		Store:      st,
		Band:       band,
		Loads:      harness.ScreenGridLoads(grid),
		QueueMax:   queueMax,
		EscWorkers: escWorkers,
		Registry:   reg,
		Campaign:   worker,
	})
	if err != nil {
		return err
	}

	mux := reg.Handler()
	srv.Register(mux)

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", httpAddr, err)
	}
	httpSrv := &http.Server{Handler: mux}
	fmt.Fprintf(os.Stderr, "diam2serve: serving design-space queries at http://%s/query (scale %s, %d presets, band %.2f)\n",
		ln.Addr(), scaleName, len(presets), band)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigc)

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "diam2serve: %v: draining (in-flight queries finish, escalations get %s)\n", sig, drainTO)
	case err := <-errc:
		return fmt.Errorf("http server: %w", err)
	}

	// Drain order matters: stop accepting and finish in-flight HTTP
	// responses first (Shutdown blocks until handlers return), then
	// give the background escalations their budget.
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTO)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "diam2serve: http shutdown:", err)
	}
	if err := srv.Close(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "diam2serve: escalations cut off at drain timeout:", err)
	}
	fmt.Fprintln(os.Stderr, "diam2serve: drained")
	return nil
}

// Command diam2topo analyzes the diameter-two topologies without
// simulation: construction summaries, the Fig. 3 scalability/cost
// comparison, the Fig. 4 bisection estimates, the Table 2 ML3B
// representation, and the Section 2.3.3 path-diversity statistics.
//
// Usage:
//
//	diam2topo -summary            # construction summary of the paper configs
//	diam2topo -scaling            # Fig. 3 (radix sweep 16..64)
//	diam2topo -bisection          # Fig. 4 estimates (paper configs)
//	diam2topo -ml3b 4             # Table 2 for a given k
//	diam2topo -diversity          # Sec. 2.3.3 diversity stats
//	diam2topo -lambda2            # spectral bisection lower-bound data
package main

import (
	"flag"
	"fmt"
	"os"

	"diam2/internal/buildinfo"
	"diam2/internal/harness"
	"diam2/internal/partition"
	"diam2/internal/topo"
	"diam2/internal/viz"
)

func main() {
	var (
		summary   = flag.Bool("summary", false, "construction summary of the paper configurations")
		scaling   = flag.Bool("scaling", false, "Fig. 3 scalability/cost table")
		bisection = flag.Bool("bisection", false, "Fig. 4 bisection-bandwidth estimates")
		ml3b      = flag.Int("ml3b", 0, "Table 2: print the k-ML3B for this k")
		diversity = flag.Bool("diversity", false, "Sec. 2.3.3 path-diversity statistics")
		lambda2   = flag.Bool("lambda2", false, "spectral lambda estimates (bisection lower bounds)")
		restarts  = flag.Int("restarts", 12, "bisection restarts")
		passes    = flag.Int("passes", 40, "bisection refinement passes")
		seed      = flag.Int64("seed", 42, "random seed")
		exportDOT = flag.String("dot", "", "write the named paper topology (sf9|sf10|mlfm|oft) as Graphviz DOT to stdout")
		exportEL  = flag.String("edgelist", "", "write the named paper topology as an edge list to stdout")
		fluidSat  = flag.Bool("fluid", false, "analytic (fluid-model) saturation loads for the paper configurations")
		draw      = flag.String("draw", "", "write a Fig. 1-style SVG diagram of the named topology (sf9|sf10|mlfm|oft) to stdout")
		version   = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("diam2topo"))
		return
	}
	if !*summary && !*scaling && !*bisection && *ml3b == 0 && !*diversity && !*lambda2 && !*fluidSat && *exportDOT == "" && *exportEL == "" && *draw == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *draw != "" {
		tp, err := paperTopo(*draw)
		if err == nil {
			err = viz.DrawSVG(os.Stdout, tp, 800, 600)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "diam2topo:", err)
			os.Exit(1)
		}
		return
	}
	if *exportDOT != "" || *exportEL != "" {
		if err := export(*exportDOT, *exportEL); err != nil {
			fmt.Fprintln(os.Stderr, "diam2topo:", err)
			os.Exit(1)
		}
		return
	}
	if *fluidSat {
		if err := fluidTable(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "diam2topo:", err)
			os.Exit(1)
		}
	}
	if err := run(*summary, *scaling, *bisection, *ml3b, *diversity, *lambda2, *restarts, *passes, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "diam2topo:", err)
		os.Exit(1)
	}
}

// fluidTable prints analytic saturation loads (Section 4.2/4.3
// predictions without simulation) via the shared harness helper, the
// same table diam2report embeds.
func fluidTable(seed int64) error {
	t, err := harness.FluidSaturationTable(harness.PaperPresets(), seed)
	if err != nil {
		return err
	}
	return t.Render(os.Stdout)
}

// paperTopo resolves a short name to a built paper topology.
func paperTopo(name string) (topo.Topology, error) {
	for _, p := range harness.PaperPresets() {
		short := map[string]string{
			"SF(q=13,p=9)": "sf9", "SF(q=13,p=10)": "sf10",
			"MLFM(h=15)": "mlfm", "OFT(k=12)": "oft",
		}[p.Name]
		if short == name {
			return p.Build()
		}
	}
	return nil, fmt.Errorf("unknown topology %q (want sf9|sf10|mlfm|oft)", name)
}

// export writes a paper topology in DOT or edge-list form.
func export(dotName, elName string) error {
	name := dotName
	if name == "" {
		name = elName
	}
	tp, err := paperTopo(name)
	if err != nil {
		return err
	}
	if dotName != "" {
		return topo.WriteDOT(os.Stdout, tp)
	}
	return topo.WriteEdgeList(os.Stdout, tp)
}

func run(summary, scaling, bisection bool, ml3b int, diversity, lambda2 bool, restarts, passes int, seed int64) error {
	if summary {
		t := &harness.Table{
			Title:  "Paper configurations (Section 4.1)",
			Header: []string{"topology", "N", "R", "radix", "ports/N", "links/N", "diam"},
		}
		for _, p := range harness.PaperPresets() {
			tp, err := p.Build()
			if err != nil {
				return err
			}
			c := topo.CostOf(tp)
			if err := topo.VerifyDiameter(tp, 2); err != nil {
				return err
			}
			t.AddRow(p.Name, fmt.Sprint(c.Nodes), fmt.Sprint(c.Routers), fmt.Sprint(tp.Radix()),
				fmt.Sprintf("%.2f", c.PortsPerNode), fmt.Sprintf("%.2f", c.LinksPerNode), "2")
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	if scaling {
		t := harness.Fig3Scalability([]int{16, 24, 32, 40, 48, 56, 64})
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	if bisection {
		t, err := harness.Fig4Bisection(harness.PaperPresets(), restarts, passes, seed)
		if err != nil {
			return err
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	if ml3b > 0 {
		t, err := harness.Table2ML3B(ml3b)
		if err != nil {
			return err
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	if diversity {
		for _, p := range harness.PaperPresets() {
			tp, err := p.Build()
			if err != nil {
				return err
			}
			if err := harness.DiversityReport(tp).Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	if lambda2 {
		t := &harness.Table{
			Title:  "Spectral lambda (largest adjacency eigenvalue orthogonal to 1) and implied bisection lower bound",
			Header: []string{"topology", "R", "degree", "lambda", "cut lower bound", "per-node lower bound"},
		}
		for _, p := range harness.PaperPresets() {
			tp, err := p.Build()
			if err != nil {
				return err
			}
			g := tp.Graph()
			l := partition.SpectralLambda2(g, 300, seed)
			deg := float64(g.NumEdges()*2) / float64(g.N())
			lower := (deg - l) * float64(g.N()) / 4
			t.AddRow(p.Name, fmt.Sprint(g.N()), fmt.Sprintf("%.1f", deg), fmt.Sprintf("%.2f", l),
				fmt.Sprintf("%.0f", lower), fmt.Sprintf("%.3f", lower/(float64(tp.Nodes())/2)))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diam2/internal/campaign"
)

func TestTailArgsValueFlags(t *testing.T) {
	var httpAddr, name string
	args, err := tailArgs([]string{"-http", ":0", "-name", "fig6", "pos"}, &httpAddr, &name)
	if err != nil {
		t.Fatal(err)
	}
	if httpAddr != ":0" || name != "fig6" {
		t.Errorf("flags not picked up: http=%q name=%q", httpAddr, name)
	}
	if len(args) != 1 || args[0] != "pos" {
		t.Errorf("positional args = %v, want [pos]", args)
	}
}

func TestTailArgsRejectsUnknownFlags(t *testing.T) {
	for _, typo := range []string{"-htpp", "--serve", "-n"} {
		var httpAddr, name string
		if _, err := tailArgs([]string{typo, "x"}, &httpAddr, &name); err == nil {
			t.Errorf("tailArgs accepted unknown flag %q", typo)
		}
	}
	var httpAddr, name string
	if _, err := tailArgs([]string{"-http"}, &httpAddr, &name); err == nil {
		t.Error("tailArgs accepted -http with no value")
	}
}

// TestTailArgsPassThrough: everything after "--" is the workers'
// argument list, stored verbatim even though it is flag-shaped.
func TestTailArgsPassThrough(t *testing.T) {
	var httpAddr, name string
	args, err := tailArgs([]string{"-name", "fig6", "--", "-fig", "6a", "-scale", "paper"}, &httpAddr, &name)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"-fig", "6a", "-scale", "paper"}
	if len(args) != len(want) {
		t.Fatalf("args = %v, want %v", args, want)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Fatalf("args = %v, want %v", args, want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("/nonexistent", "status", []string{"stray"}, "", ""); err == nil || !strings.Contains(err.Error(), "takes no arguments") {
		t.Errorf("status with stray args = %v", err)
	}
	if err := run("/nonexistent", "submit", nil, "", ""); err == nil || !strings.Contains(err.Error(), "needs -name") {
		t.Errorf("submit without -name = %v", err)
	}
	if err := run("/nonexistent", "serve", nil, "", ""); err == nil || !strings.Contains(err.Error(), "needs -http") {
		t.Errorf("serve without -http = %v", err)
	}
	if err := run("/nonexistent", "nonsense", nil, "", ""); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("unknown subcommand = %v", err)
	}
}

func TestSubmitFirstWriterWins(t *testing.T) {
	storeDir := t.TempDir()
	campDir := campaign.DirFor(storeDir)
	if err := submit(campDir, "fig 6a", []string{"-fig", "6a"}); err != nil {
		t.Fatal(err)
	}
	err := submit(campDir, "other", nil)
	if err == nil || !strings.Contains(err.Error(), "already submitted") {
		t.Fatalf("second submit = %v, want a conflict", err)
	}
	m, err := campaign.ReadManifest(campDir)
	if err != nil || m == nil || m.Name != "fig 6a" || len(m.Args) != 2 {
		t.Fatalf("manifest = %+v, %v", m, err)
	}
}

// TestServeEndpoints exercises the coordinator mux against a real
// campaign directory: full status, compact progress, and the submit
// endpoint including its conflict answer.
func TestServeEndpoints(t *testing.T) {
	storeDir := t.TempDir()
	campDir := campaign.DirFor(storeDir)
	w, err := campaign.NewWorker(campDir, "w1", campaign.Policy{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Build the same mux serve() listens with, but under httptest.
	mux := coordinatorMux(storeDir, campDir)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/campaign")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st campaign.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/campaign not a status scan: %v (%s)", err, body)
	}
	if len(st.Workers) != 1 || st.Workers[0].Owner != "w1" || !st.Workers[0].Live {
		t.Fatalf("/campaign workers = %+v", st.Workers)
	}

	resp, err = http.Get(srv.URL + "/campaign/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var prog progressBody
	if err := json.Unmarshal(body, &prog); err != nil {
		t.Fatalf("/campaign/progress not JSON: %v", err)
	}
	if prog.Workers != 1 || prog.LiveWorkers != 1 {
		t.Errorf("progress = %+v", prog)
	}
	if prog.Records != -1 {
		t.Errorf("progress.Records = %d, want -1 (no store created yet)", prog.Records)
	}

	post := func(payload string) (int, string) {
		resp, err := http.Post(srv.URL+"/campaign/submit", "application/json", bytes.NewBufferString(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, _ := post(`{"args":["-fig","6a"]}`); code != http.StatusBadRequest {
		t.Errorf("nameless submit status %d, want 400", code)
	}
	if code, body := post(`{"name":"fig 6a","args":["-fig","6a"]}`); code != http.StatusCreated {
		t.Errorf("submit status %d (%s), want 201", code, body)
	}
	if code, _ := post(`{"name":"again"}`); code != http.StatusConflict {
		t.Errorf("re-submit status %d, want 409", code)
	}
	if resp, err := http.Get(srv.URL + "/campaign/submit"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET submit status %d, want 405", resp.StatusCode)
		}
	}
}

// Command diam2campaign observes and coordinates distributed sweep
// campaigns (the lease-coordinated multi-worker mode of
// `diam2sweep -campaign`, see internal/campaign).
//
// Usage:
//
//	diam2campaign -store DIR status              # one-shot campaign status
//	diam2campaign -store DIR submit -name NAME [ARGS...]
//	diam2campaign -store DIR serve -http ADDR    # coordinator endpoints
//
// status prints the campaign manifest, every registered worker with
// its heartbeat age and liveness verdict, the outstanding leases, the
// failing points with their attempt counts, the quarantined (poison)
// points, and the store's live record count. It is read-only and works
// on a campaign that has not started yet (an empty store directory
// scans as an idle campaign).
//
// submit records what the campaign is meant to compute — a free-form
// name plus the diam2sweep argument list workers should run — into the
// campaign manifest. The first submission wins; submitting over an
// existing manifest is an error (a changed mind means a new store).
//
// serve runs a coordinator: it extends the telemetry registry's
// observability mux with campaign endpoints and blocks. GET /campaign
// returns the full status scan (workers, liveness, leases, failures,
// quarantine), GET /campaign/progress a compact progress summary
// including the store's live record count, and POST /campaign/submit
// accepts a JSON {"name": ..., "args": [...]} manifest. The
// coordinator holds no lock and owns no state: every response is
// assembled from the shared directory, so it can be restarted (or
// never started) without affecting the workers.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"time"

	"diam2/internal/buildinfo"
	"diam2/internal/campaign"
	"diam2/internal/sim"
	"diam2/internal/store"
	"diam2/internal/telemetry"
)

func main() {
	var (
		dir      = flag.String("store", "", "store directory of the campaign (required)")
		version  = flag.Bool("version", false, "print build/version info and exit")
		httpAddr = flag.String("http", "", "serve: coordinator listen address, e.g. :6060")
		name     = flag.String("name", "", "submit: campaign name")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("diam2campaign"))
		fmt.Printf("engine schema %d, store schema %d\n", sim.EngineSchema, store.Schema)
		return
	}
	if *dir == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: diam2campaign -store DIR {status|submit -name NAME [ARGS...]|serve -http ADDR}")
		os.Exit(2)
	}
	// flag.Parse stops at the first positional (the subcommand), so
	// accept the value flags after it too: "serve -http :0" must work,
	// and a typo like "serve -htpp :0" must abort, not be ignored.
	args, err := tailArgs(flag.Args()[1:], httpAddr, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diam2campaign:", err)
		os.Exit(2)
	}
	if err := run(*dir, flag.Arg(0), args, *httpAddr, *name); err != nil {
		fmt.Fprintln(os.Stderr, "diam2campaign:", err)
		os.Exit(1)
	}
}

// tailArgs sorts the tokens after the subcommand into the recognized
// value flags and positional arguments. Anything flag-shaped but
// unrecognized is an error — except after submit's "--", which passes
// the workers' argument list through verbatim (it is stored, not
// interpreted, and diam2sweep arguments are flag-shaped).
func tailArgs(tail []string, httpAddr, name *string) ([]string, error) {
	args := make([]string, 0, len(tail))
	take := func(i int, dst *string, flagName string) (int, error) {
		if i+1 >= len(tail) {
			return 0, fmt.Errorf("%s needs a value", flagName)
		}
		*dst = tail[i+1]
		return i + 1, nil
	}
	for i := 0; i < len(tail); i++ {
		var err error
		switch a := tail[i]; a {
		case "-http", "--http":
			i, err = take(i, httpAddr, a)
		case "-name", "--name":
			i, err = take(i, name, a)
		case "--":
			return append(args, tail[i+1:]...), nil
		default:
			if len(a) > 0 && a[0] == '-' {
				return nil, fmt.Errorf("unknown flag %q after subcommand (know -http and -name; pass worker arguments after --)", a)
			}
			args = append(args, a)
		}
		if err != nil {
			return nil, err
		}
	}
	return args, nil
}

func run(dir, cmd string, args []string, httpAddr, name string) error {
	campDir := campaign.DirFor(dir)
	switch cmd {
	case "status":
		if len(args) > 0 {
			return fmt.Errorf("status takes no arguments (got %q)", args)
		}
		return status(dir, campDir)
	case "submit":
		if name == "" {
			return fmt.Errorf("submit needs -name")
		}
		return submit(campDir, name, args)
	case "serve":
		if len(args) > 0 {
			return fmt.Errorf("serve takes no arguments (got %q)", args)
		}
		if httpAddr == "" {
			return fmt.Errorf("serve needs -http ADDR")
		}
		return serve(dir, campDir, httpAddr)
	default:
		return fmt.Errorf("unknown subcommand %q (status|submit|serve)", cmd)
	}
}

// liveRecords counts the store's live records without taking its lock
// or logging scan warnings (the store may be mid-append; a torn tail
// just undercounts by one until the writer finishes).
func liveRecords(dir string) (int, error) {
	st, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	return st.Len(), nil
}

func status(storeDir, campDir string) error {
	st, err := campaign.Scan(campDir)
	if err != nil {
		return err
	}
	if st.Manifest != nil {
		fmt.Printf("campaign  %s (submitted %s)\n", st.Manifest.Name, st.Manifest.Created)
		if len(st.Manifest.Args) > 0 {
			fmt.Printf("args      %v\n", st.Manifest.Args)
		}
	} else {
		fmt.Println("campaign  (no manifest submitted)")
	}
	if n, err := liveRecords(storeDir); err == nil {
		fmt.Printf("store     %s\n", store.FormatCount(n, "live record"))
	} else {
		fmt.Printf("store     not readable yet (%v)\n", err)
	}
	fmt.Printf("workers   %d registered, %d live\n", len(st.Workers), st.LiveWorkers())
	for _, w := range st.Workers {
		verdict := "LIVE"
		if !w.Live {
			verdict = "DEAD (leases reclaimable)"
		}
		fmt.Printf("  %-24s pid=%-7d host=%-12s heartbeat %.1fs ago  %s\n", w.Owner, w.PID, w.Host, w.HeartbeatAge, verdict)
	}
	fmt.Printf("leases    %d outstanding\n", len(st.Leases))
	for _, l := range st.Leases {
		fmt.Printf("  %-60s owner=%s age=%.1fs\n", l.Point, l.Owner, l.Age)
	}
	if len(st.Failed) > 0 {
		fmt.Printf("failing   %d point(s) still retrying\n", len(st.Failed))
		for _, f := range st.Failed {
			fmt.Printf("  %-60s attempts=%d last: %s\n", f.Point, f.Attempts, firstLine(f.LastErr))
		}
	}
	if len(st.Quarantined) > 0 {
		fmt.Printf("QUARANTINED %d poison point(s) (full logs under %s/quarantine)\n", len(st.Quarantined), campDir)
		for _, f := range st.Quarantined {
			fmt.Printf("  %-60s attempts=%d last: %s\n", f.Point, f.Attempts, firstLine(f.LastErr))
		}
	}
	return nil
}

func submit(campDir, name string, args []string) error {
	m := campaign.Manifest{
		Name:      name,
		Args:      args,
		Created:   time.Now().UTC().Format(time.RFC3339),
		CreatedBy: "diam2campaign " + buildinfo.Version(),
	}
	if err := campaign.WriteManifest(campDir, m); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return fmt.Errorf("campaign already submitted (manifest exists; a different campaign needs a fresh store)")
		}
		return err
	}
	fmt.Printf("submitted %q to %s\n", name, campDir)
	return nil
}

// progressBody is the /campaign/progress response: the compact numbers
// a dashboard polls, without the per-worker detail of /campaign.
type progressBody struct {
	Time        string `json:"time"`
	Records     int    `json:"records"` // live results in the store (-1: store unreadable)
	Workers     int    `json:"workers"`
	LiveWorkers int    `json:"live_workers"`
	Leases      int    `json:"leases"`
	Failed      int    `json:"failed"`
	Quarantined int    `json:"quarantined"`
}

// coordinatorMux assembles the coordinator's HTTP surface: the
// telemetry registry's observability mux (with /campaign attached)
// plus the coordinator-only progress and submit endpoints, mounted on
// the same route-enumerating mux so the "/" index lists them all.
// Factored out of serve so tests can drive it without a listener.
func coordinatorMux(storeDir, campDir string) *telemetry.Mux {
	reg := telemetry.NewRegistry()
	reg.SetCampaign(func() any {
		st, err := campaign.Scan(campDir)
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return st
	})
	mux := reg.Handler()
	mux.HandleFunc("/campaign/progress", func(w http.ResponseWriter, req *http.Request) {
		st, err := campaign.Scan(campDir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		body := progressBody{
			Time:        st.Time,
			Workers:     len(st.Workers),
			LiveWorkers: st.LiveWorkers(),
			Leases:      len(st.Leases),
			Failed:      len(st.Failed),
			Quarantined: len(st.Quarantined),
		}
		if n, err := liveRecords(storeDir); err == nil {
			body.Records = n
		} else {
			body.Records = -1
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	mux.HandleFunc("/campaign/submit", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST a JSON {\"name\": ..., \"args\": [...]} body", http.StatusMethodNotAllowed)
			return
		}
		var m campaign.Manifest
		if err := json.NewDecoder(req.Body).Decode(&m); err != nil {
			http.Error(w, "bad manifest: "+err.Error(), http.StatusBadRequest)
			return
		}
		if m.Name == "" {
			http.Error(w, "manifest needs a name", http.StatusBadRequest)
			return
		}
		m.Created = time.Now().UTC().Format(time.RFC3339)
		m.CreatedBy = "diam2campaign " + buildinfo.Version()
		if err := campaign.WriteManifest(campDir, m); err != nil {
			if errors.Is(err, fs.ErrExist) {
				http.Error(w, "campaign already submitted", http.StatusConflict)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, "submitted %q\n", m.Name)
	})
	return mux
}

func serve(storeDir, campDir, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	fmt.Fprintf(os.Stderr, "diam2campaign: coordinator at http://%s/campaign (progress, submit; telemetry mux underneath)\n", ln.Addr())
	return (&http.Server{Handler: coordinatorMux(storeDir, campDir)}).Serve(ln)
}

// firstLine trims multi-line error payloads (panic stacks) for the
// one-line status listing.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

package main

import (
	"strings"
	"testing"
)

func TestTailArgsRecognizedFlags(t *testing.T) {
	var verbose, dryRun bool
	args, err := tailArgs([]string{"-v", "--dry-run", "otherdir"}, &verbose, &dryRun)
	if err != nil {
		t.Fatal(err)
	}
	if !verbose || !dryRun {
		t.Errorf("flags not picked up: verbose=%v dryRun=%v", verbose, dryRun)
	}
	if len(args) != 1 || args[0] != "otherdir" {
		t.Errorf("positional args = %v, want [otherdir]", args)
	}
}

// TestTailArgsRejectsUnknownFlags is the footgun the old code had: a
// typo like "gc -dryrun" fell through as an ignored positional and the
// gc ran for real. Any unrecognized flag-shaped token must abort.
func TestTailArgsRejectsUnknownFlags(t *testing.T) {
	for _, typo := range []string{"-dryrun", "--dryrun", "-n", "--verbose"} {
		var verbose, dryRun bool
		if _, err := tailArgs([]string{typo}, &verbose, &dryRun); err == nil {
			t.Errorf("tailArgs accepted unknown flag %q", typo)
		}
		if dryRun || verbose {
			t.Errorf("unknown flag %q set a recognized option", typo)
		}
	}
}

// TestRunRejectsStrayArguments: subcommands that take no positionals
// must error on them (before touching any store), and diff must insist
// on exactly one.
func TestRunRejectsStrayArguments(t *testing.T) {
	for _, cmd := range []string{"list", "verify", "gc"} {
		err := run("/nonexistent", cmd, []string{"stray"}, false, false)
		if err == nil || !strings.Contains(err.Error(), "takes no arguments") {
			t.Errorf("%s with a stray argument = %v, want refusal", cmd, err)
		}
	}
	if err := run("/nonexistent", "diff", nil, false, false); err == nil {
		t.Error("diff with no argument accepted")
	}
	if err := run("/nonexistent", "diff", []string{"a", "b"}, false, false); err == nil {
		t.Error("diff with two arguments accepted")
	}
	if err := run("/nonexistent", "nonsense", nil, false, false); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("unknown subcommand = %v", err)
	}
}

package main

import (
	"strings"
	"testing"

	"diam2/internal/store"
)

func TestTailArgsRecognizedFlags(t *testing.T) {
	var verbose, dryRun bool
	args, err := tailArgs([]string{"-v", "--dry-run", "otherdir"}, &verbose, &dryRun)
	if err != nil {
		t.Fatal(err)
	}
	if !verbose || !dryRun {
		t.Errorf("flags not picked up: verbose=%v dryRun=%v", verbose, dryRun)
	}
	if len(args) != 1 || args[0] != "otherdir" {
		t.Errorf("positional args = %v, want [otherdir]", args)
	}
}

// TestTailArgsRejectsUnknownFlags is the footgun the old code had: a
// typo like "gc -dryrun" fell through as an ignored positional and the
// gc ran for real. Any unrecognized flag-shaped token must abort.
func TestTailArgsRejectsUnknownFlags(t *testing.T) {
	for _, typo := range []string{"-dryrun", "--dryrun", "-n", "--verbose"} {
		var verbose, dryRun bool
		if _, err := tailArgs([]string{typo}, &verbose, &dryRun); err == nil {
			t.Errorf("tailArgs accepted unknown flag %q", typo)
		}
		if dryRun || verbose {
			t.Errorf("unknown flag %q set a recognized option", typo)
		}
	}
}

// TestStats: per-tier counts, segment footprint, and the dedupe ratio
// over a store holding sim records, fluid records, and one superseded
// duplicate.
func TestStats(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	put := func(key, tier string) {
		t.Helper()
		if err := st.Put(store.Record{Key: key, Point: "pt-" + key, Tier: tier, Payload: []byte(`{}`)}); err != nil {
			t.Fatal(err)
		}
	}
	put("sim-a", store.TierSim)
	put("sim-b", store.TierSim)
	put("fluid-a", store.TierFluid)
	put("sim-a", store.TierSim) // supersedes: 4 stored lines, 3 live keys
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := statsTo(&out, dir); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"3 live (2 sim, 1 fluid)",
		"4 stored record(s) for 3 live key(s) (1.33x",
		"segments  1 holding ",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output lacks %q:\n%s", want, got)
		}
	}
}

// TestStatsRefusesMissingStore: stats is read-only and must not
// conjure an empty store out of a typo'd path.
func TestStatsRefusesMissingStore(t *testing.T) {
	var out strings.Builder
	if err := statsTo(&out, t.TempDir()+"/nope"); err == nil {
		t.Fatal("stats on a nonexistent store succeeded")
	}
}

// TestRunRejectsStrayArguments: subcommands that take no positionals
// must error on them (before touching any store), and diff must insist
// on exactly one.
func TestRunRejectsStrayArguments(t *testing.T) {
	for _, cmd := range []string{"list", "stats", "verify", "gc"} {
		err := run("/nonexistent", cmd, []string{"stray"}, false, false)
		if err == nil || !strings.Contains(err.Error(), "takes no arguments") {
			t.Errorf("%s with a stray argument = %v, want refusal", cmd, err)
		}
	}
	if err := run("/nonexistent", "diff", nil, false, false); err == nil {
		t.Error("diff with no argument accepted")
	}
	if err := run("/nonexistent", "diff", []string{"a", "b"}, false, false); err == nil {
		t.Error("diff with two arguments accepted")
	}
	if err := run("/nonexistent", "nonsense", nil, false, false); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Errorf("unknown subcommand = %v", err)
	}
}

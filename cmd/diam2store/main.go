// Command diam2store inspects and maintains content-addressed
// experiment stores (the -store directories written by diam2sweep,
// diam2sim -saturate and diam2report).
//
// Usage:
//
//	diam2store -store DIR list            # every live record with provenance
//	diam2store -store DIR stats           # per-tier counts, disk footprint, dedupe ratio
//	diam2store -store DIR verify          # full scan: checksums, corrupt lines, stale records
//	diam2store -store DIR diff OTHERDIR   # compare two stores' keys and payloads
//	diam2store -store DIR gc              # drop superseded and stale-engine records, compact segments
//	diam2store -store DIR gc -dry-run     # report what gc would do
//
// list, stats, verify and diff are read-only: they refuse a path that
// holds no store (a typo must not conjure an empty store that then
// "verifies" clean) and never modify the store they inspect. gc
// requires an existing store too. Unrecognized flags or stray arguments
// after a subcommand are errors, never silently ignored — "gc -dryrun"
// must not quietly run a real gc.
//
// list prints one line per live record: the point key, the abbreviated
// canonical key, the derived seed, the wall time of the producing run,
// and the engine schema plus build it ran under.
//
// stats summarizes the store for dashboards and capacity planning: live
// record counts split by result tier (flit-level sim vs analytic
// fluid), segment count and on-disk bytes, and the dedupe ratio (stored
// record lines per live key — above 1.0 means superseded duplicates a
// gc would reclaim).
//
// verify reopens the store from scratch, the way a resuming sweep
// would: it reports every segment, every record that failed its
// checksum or framing (a torn tail after a SIGKILL shows up here), and
// how many records a gc would drop because they were produced under a
// different engine schema. Exit status 1 if any corruption was found.
//
// diff compares live records by canonical key: points only in one
// store, and points in both whose payloads differ (which, for equal
// keys, indicates nondeterminism or a corrupted payload — equal keys
// must mean equal results).
//
// gc keeps the latest record per key, drops records whose engine
// schema differs from this binary's, and rewrites the survivors into a
// single fresh segment (tmp+rename; a kill mid-gc leaves a store the
// next open deduplicates).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"diam2/internal/buildinfo"
	"diam2/internal/sim"
	"diam2/internal/store"
)

func main() {
	var (
		dir     = flag.String("store", "", "store directory (required)")
		version = flag.Bool("version", false, "print build/version info and exit")
		verbose = flag.Bool("v", false, "list: full canonical keys and payloads")
		dryRun  = flag.Bool("dry-run", false, "gc: report without rewriting")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("diam2store"))
		fmt.Printf("engine schema %d, store schema %d\n", sim.EngineSchema, store.Schema)
		return
	}
	if *dir == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: diam2store -store DIR {list|stats|verify|diff OTHERDIR|gc}")
		os.Exit(2)
	}
	// flag.Parse stops at the first positional (the subcommand), so
	// accept the boolean flags after it too: "gc -dry-run" must not
	// silently run a real gc.
	args, err := tailArgs(flag.Args()[1:], verbose, dryRun)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diam2store:", err)
		os.Exit(2)
	}
	if err := run(*dir, flag.Arg(0), args, *verbose, *dryRun); err != nil {
		fmt.Fprintln(os.Stderr, "diam2store:", err)
		os.Exit(1)
	}
}

// tailArgs sorts the tokens after the subcommand into recognized
// boolean flags and positional arguments. Anything flag-shaped but
// unrecognized is an error: a typo like "gc -dryrun" must abort, not
// fall through to a real, destructive gc.
func tailArgs(tail []string, verbose, dryRun *bool) ([]string, error) {
	args := make([]string, 0, len(tail))
	for _, a := range tail {
		switch a {
		case "-v", "--v":
			*verbose = true
		case "-dry-run", "--dry-run":
			*dryRun = true
		default:
			if len(a) > 0 && a[0] == '-' {
				return nil, fmt.Errorf("unknown flag %q after subcommand (know -v and -dry-run)", a)
			}
			args = append(args, a)
		}
	}
	return args, nil
}

func run(dir, cmd string, args []string, verbose, dryRun bool) error {
	switch cmd {
	case "list", "stats", "verify", "gc":
		// These take no positional arguments; a stray token is a
		// mistake worth stopping on, not ignoring.
		if len(args) > 0 {
			return fmt.Errorf("%s takes no arguments (got %q)", cmd, args)
		}
	case "diff":
		if len(args) != 1 {
			return fmt.Errorf("diff wants exactly one other store directory")
		}
	default:
		return fmt.Errorf("unknown subcommand %q (list|stats|verify|diff|gc)", cmd)
	}
	switch cmd {
	case "list":
		return list(dir, verbose)
	case "stats":
		return stats(dir)
	case "verify":
		return verify(dir)
	case "diff":
		return diff(dir, args[0])
	default:
		return gc(dir, dryRun)
	}
}

func list(dir string, verbose bool) error {
	st, err := store.OpenCLIRead(dir, "diam2store")
	if err != nil {
		return err
	}
	defer st.Close()
	for _, rec := range st.Records() {
		fmt.Printf("%-60s  key=%s seed=%d wall=%.1fms engine-schema=%d build=%s created=%s\n",
			rec.Point, store.ShortKey(rec.Key), rec.Seed, rec.WallMS, rec.EngineSchema, rec.Engine, rec.Created)
		if verbose {
			fmt.Printf("  %s\n  %s\n", rec.Key, rec.Payload)
		}
	}
	fmt.Fprintln(os.Stderr, "diam2store:", st.Summary())
	return nil
}

// stats summarizes one store read-only: per-tier live record counts,
// on-disk segment footprint, and the dedupe ratio.
func stats(dir string) error { return statsTo(os.Stdout, dir) }

func statsTo(w io.Writer, dir string) error {
	st, err := store.OpenCLIRead(dir, "diam2store")
	if err != nil {
		return err
	}
	defer st.Close()
	var sim, fluid, other int
	for _, rec := range st.Records() {
		switch rec.Tier {
		case store.TierSim:
			sim++
		case store.TierFluid:
			fluid++
		default:
			other++
		}
	}
	s := st.Stats()
	segs, bytes, err := st.SegmentStats()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "records   %d live (%d sim, %d fluid)\n", s.Records, sim, fluid)
	if other > 0 {
		fmt.Fprintf(w, "          %d under unrecognized tiers\n", other)
	}
	fmt.Fprintf(w, "segments  %d holding %s on disk\n", segs, formatBytes(bytes))
	ratio := 1.0
	if s.Records > 0 {
		ratio = float64(s.Total) / float64(s.Records)
	}
	fmt.Fprintf(w, "dedupe    %d stored record(s) for %d live key(s) (%.2fx; above 1.00x gc reclaims the surplus)\n",
		s.Total, s.Records, ratio)
	if s.Corrupt > 0 {
		fmt.Fprintf(w, "corrupt   %d record(s) skipped at open; run verify for detail\n", s.Corrupt)
	}
	return nil
}

// formatBytes renders a byte count at a human scale.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func verify(dir string) error {
	rep, err := store.Verify(dir, sim.EngineSchema)
	if err != nil {
		return err
	}
	fmt.Printf("segments  %d\n", len(rep.Segments))
	for _, s := range rep.Segments {
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("records   %d valid (%d live, %d superseded)\n", rep.Records, rep.Live, rep.Records-rep.Live)
	if rep.StaleEngine > 0 {
		fmt.Printf("stale     %s under a different engine schema (current %d); gc reclaims them\n",
			store.FormatCount(rep.StaleEngine, "record"), sim.EngineSchema)
	}
	if len(rep.Corruptions) == 0 {
		fmt.Println("integrity ok: every record line passed framing and checksum")
		return nil
	}
	fmt.Printf("integrity %s skipped:\n", store.FormatCount(len(rep.Corruptions), "corrupt record"))
	for _, c := range rep.Corruptions {
		fmt.Printf("  %s\n", c)
	}
	return fmt.Errorf("%s found (resuming sweeps recompute those points; gc rewrites clean segments)",
		store.FormatCount(len(rep.Corruptions), "corrupt record"))
}

func diff(dirA, dirB string) error {
	a, err := store.OpenCLIRead(dirA, "diam2store")
	if err != nil {
		return err
	}
	defer a.Close()
	b, err := store.OpenCLIRead(dirB, "diam2store")
	if err != nil {
		return err
	}
	defer b.Close()
	rep := store.Diff(a, b)
	for _, rec := range rep.OnlyA {
		fmt.Printf("only %s: %s (key=%s)\n", dirA, rec.Point, store.ShortKey(rec.Key))
	}
	for _, rec := range rep.OnlyB {
		fmt.Printf("only %s: %s (key=%s)\n", dirB, rec.Point, store.ShortKey(rec.Key))
	}
	for _, rec := range rep.Differ {
		fmt.Printf("DIFFER: %s (key=%s) — same canonical key, different payload\n", rec.Point, store.ShortKey(rec.Key))
	}
	fmt.Printf("%d equal, %d only in %s, %d only in %s, %d differ\n",
		rep.Equal, len(rep.OnlyA), dirA, len(rep.OnlyB), dirB, len(rep.Differ))
	if len(rep.Differ) > 0 {
		return fmt.Errorf("%s with equal keys but different payloads", store.FormatCount(len(rep.Differ), "record"))
	}
	return nil
}

func gc(dir string, dryRun bool) error {
	st, err := store.OpenCLIExisting(dir, "diam2store")
	if err != nil {
		return err
	}
	defer st.Close()
	if dryRun {
		rep, err := store.Verify(dir, sim.EngineSchema)
		if err != nil {
			return err
		}
		fmt.Printf("gc would keep %d record(s), drop %d superseded and %d stale-engine, and rewrite %d segment(s)\n",
			rep.Live-rep.StaleEngine, rep.Records-rep.Live, rep.StaleEngine, len(rep.Segments))
		return nil
	}
	rep, err := st.GC(sim.EngineSchema)
	if err != nil {
		return err
	}
	fmt.Printf("gc kept %d record(s); dropped %d superseded and %d stale-engine; rewrote %d segment(s) into 1\n",
		rep.Live, rep.DroppedDupes, rep.DroppedStale, rep.RemovedSegments)
	return nil
}

// Command diam2sim runs a single simulation: one topology, one
// routing strategy, one traffic pattern, one offered load.
//
// Usage:
//
//	diam2sim -topo sf9 -alg min -pattern uni -load 0.5
//	diam2sim -topo mlfm -alg ath -pattern wc -load 1.0 -scale paper
//	diam2sim -topo oft -alg a -exchange a2a
//	diam2sim -topo sf10 -alg inr -exchange nn -scale quick
//	diam2sim -topo mlfm -alg min -load 0.3 -fail-links 0.05 -fail-at 5000
//	diam2sim -topo oft -alg a -load 0.5 -mtbf 200000 -retx-timeout 1024
//
// Topologies: sf9, sf10, mlfm, oft (paper configs), sf-small,
// mlfm-small, oft-small, or file:PATH to load an edge-list topology
// (see topo.ReadEdgeList). File topologies are named PATH#DIGEST — a
// content digest, so -store results keyed under one file never get
// reused after the file changes. Algorithms: min, inr, a, ath. Patterns:
// uni, wc. Exchanges: a2a, nn (override -pattern). -saturate sweeps
// the default load ladder through the experiment scheduler and
// reports the highest load whose delivered throughput tracks the
// offer within 5%; -j sets the pool size (0: all CPUs) and -progress
// reports each completed point on stderr.
//
// Parallelism comes in two orthogonal flavors. -j runs independent
// sweep *points* concurrently (embarrassingly parallel, results
// byte-identical for any -j). -cores shards the routers of each
// *single simulation* across that many threads of the sharded engine
// — use it for one huge run, not for sweeps. A -cores run follows its
// own determinism contract (identical results for a fixed partition
// at any thread count) but is not bit-identical to a serial run, so
// -store keys the two separately; see DESIGN.md §14.
//
// Fault injection: -fail-links downs a random (seeded) set of router
// links at cycle -fail-at; -mtbf instead drives a continuous per-link
// failure/repair process. Dropped packets are retransmitted by their
// sources after -retx-timeout cycles with exponential backoff, and
// routing tables are rebuilt from the degraded graph after the
// -rebuild-latency window.
//
// Profiling: -cpuprofile/-memprofile write pprof profiles of the run,
// -traceprofile a runtime execution trace (the tool for diagnosing
// -cores barrier imbalance); the summary always includes the achieved
// simulation rate (cycles/s). See README, "Profiling the engine".
//
// Observability: -telemetry collects the unified telemetry of the run
// (congestion heatmap, minimal-vs-indirect latency split, flight
// recorder); -trace-out FILE exports the recorded events as JSONL and
// -http ADDR serves /telemetry, /debug/vars and /debug/pprof live.
// See README, "Observability".
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	"diam2/internal/buildinfo"
	"diam2/internal/harness"
	"diam2/internal/sim"
	"diam2/internal/store"
	"diam2/internal/topo"
	"diam2/internal/traffic"
)

func main() {
	var (
		topoName = flag.String("topo", "mlfm", "topology: sf9|sf10|mlfm|oft|sf-small|mlfm-small|oft-small")
		algName  = flag.String("alg", "min", "routing: min|inr|a|ath")
		pattern  = flag.String("pattern", "uni", "synthetic pattern: uni|wc")
		exchange = flag.String("exchange", "", "closed-loop exchange instead: a2a|nn")
		load     = flag.Float64("load", 0.5, "offered load (fraction of injection bandwidth)")
		scale    = flag.String("scale", "quick", "scale: quick|paper")
		ni       = flag.Int("ni", 0, "override UGAL nI")
		c        = flag.Float64("c", 0, "override UGAL cost constant (c or cSF)")
		seed     = flag.Int64("seed", 1, "random seed")
		saturate = flag.Bool("saturate", false, "sweep the load ladder for the saturation load instead of one run")
		jobs     = flag.Int("j", 0, "worker-pool size for -saturate: independent points in parallel (0: all CPUs, 1: serial); orthogonal to -cores")
		cores    = flag.Int("cores", 1, "threads *within* each simulation (sharded engine; 1: serial engine); orthogonal to -j, not bit-identical to serial")
		progress = flag.Bool("progress", false, "report each completed sweep point on stderr")
		storeDir = flag.String("store", "", "content-addressed result store for -saturate ladder points (see diam2sweep -store)")
		force    = flag.Bool("force", false, "with -store, recompute every point (fresh results still recorded)")
		version  = flag.Bool("version", false, "print build/version info and exit")

		failLinks  = flag.Float64("fail-links", 0, "links to fail mid-run: a fraction (< 1) or a count (>= 1)")
		failAt     = flag.Int64("fail-at", -1, "cycle at which -fail-links links go down (default: end of warmup)")
		mtbf       = flag.Int64("mtbf", 0, "per-link mean cycles between failures (enables the random fault process)")
		mttr       = flag.Int64("mttr", 0, "per-link repair time in cycles for -mtbf (default: mtbf/10)")
		retxTO     = flag.Int("retx-timeout", 0, "override the retransmission timeout, cycles")
		rebuildLat = flag.Int("rebuild-latency", 0, "override the routing-table rebuild latency, cycles (negative forces instant rebuild)")

		cpuProfile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = flag.String("memprofile", "", "write a pprof allocation profile at exit to this file")
		traceProfile = flag.String("traceprofile", "", "write a runtime execution trace of the run to this file (go tool trace; shows -cores barrier waits)")

		telemetryOn = flag.Bool("telemetry", false, "collect unified telemetry (heatmap, latency split, flight recorder)")
		traceOut    = flag.String("trace-out", "", "write the flight-recorder event trace as JSONL to this file (implies -telemetry)")
		httpAddr    = flag.String("http", "", "serve /telemetry, /debug/vars and /debug/pprof on this address, e.g. :6060 (implies -telemetry)")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Banner("diam2sim"))
		fmt.Printf("engine schema %d, store schema %d\n", sim.EngineSchema, store.Schema)
		return
	}
	fp := harness.FaultPlan{
		FailAt:         *failAt,
		MTBF:           *mtbf,
		MTTR:           *mttr,
		RetxTimeout:    *retxTO,
		RebuildLatency: *rebuildLat,
	}
	if *failLinks >= 1 {
		fp.FailCount = int(*failLinks)
	} else {
		fp.FailFrac = *failLinks
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stopProf, err := harness.StartProfiles(*cpuProfile, *memProfile, *traceProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diam2sim:", err)
		os.Exit(1)
	}
	tel := telOpts{
		enabled:  *telemetryOn || *traceOut != "" || *httpAddr != "",
		traceOut: *traceOut,
		httpAddr: *httpAddr,
	}
	runErr := run(ctx, *topoName, *algName, *pattern, *exchange, *load, *scale, *ni, *c, *seed, *saturate, *jobs, *cores, *progress, fp, tel, *storeDir, *force)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "diam2sim:", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "diam2sim:", runErr)
		os.Exit(1)
	}
}

func findPreset(name string) (harness.Preset, error) {
	if strings.HasPrefix(name, "file:") {
		path := strings.TrimPrefix(name, "file:")
		// The file is read once, up front, and a digest of its contents
		// becomes part of the topology name. The name is what reaches
		// every scheduler point key and thus the store's canonical keys:
		// the path alone must not address results, because the file can
		// change between runs against the same -store. Build parses the
		// captured bytes, so the digested contents are exactly what runs.
		data, err := os.ReadFile(path)
		if err != nil {
			return harness.Preset{}, err
		}
		sum := sha256.Sum256(data)
		tagged := fmt.Sprintf("%s#%x", path, sum[:6])
		return harness.Preset{
			Name: tagged,
			Build: func() (topo.Topology, error) {
				return topo.ReadEdgeList(bytes.NewReader(data), tagged)
			},
			BestAdaptive: harness.UGALConfig{NI: 4, C: 2},
		}, nil
	}
	all := map[string]harness.Preset{}
	for _, p := range harness.PaperPresets() {
		switch {
		case strings.HasPrefix(p.Name, "SF(q=13,p=9"):
			all["sf9"] = p
		case strings.HasPrefix(p.Name, "SF(q=13,p=10"):
			all["sf10"] = p
		case strings.HasPrefix(p.Name, "MLFM"):
			all["mlfm"] = p
		case strings.HasPrefix(p.Name, "OFT"):
			all["oft"] = p
		}
	}
	for _, p := range harness.SmallPresets() {
		switch {
		case strings.HasPrefix(p.Name, "SF"):
			all["sf-small"] = p
		case strings.HasPrefix(p.Name, "MLFM"):
			all["mlfm-small"] = p
		case strings.HasPrefix(p.Name, "OFT"):
			all["oft-small"] = p
		}
	}
	p, ok := all[name]
	if !ok {
		return harness.Preset{}, fmt.Errorf("unknown topology %q", name)
	}
	return p, nil
}

func parseAlg(name string) (harness.AlgKind, error) {
	switch name {
	case "min":
		return harness.AlgMIN, nil
	case "inr":
		return harness.AlgINR, nil
	case "a":
		return harness.AlgA, nil
	case "ath":
		return harness.AlgATh, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

func run(ctx context.Context, topoName, algName, pattern, exchange string, load float64, scaleName string, ni int, c float64, seed int64, saturate bool, jobs, cores int, progress bool, fp harness.FaultPlan, tel telOpts, storeDir string, force bool) error {
	preset, err := findPreset(topoName)
	if err != nil {
		return err
	}
	alg, err := parseAlg(algName)
	if err != nil {
		return err
	}
	var sc harness.Scale
	switch scaleName {
	case "quick":
		sc = harness.QuickScale()
	case "paper":
		sc = harness.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	sc.Seed = seed
	sc.Faults = fp
	sc.Cores = cores
	sc.Sched = harness.Sched{Workers: jobs, Ctx: ctx}
	if progress {
		// The progress line spells out both parallelism axes so "-j 4
		// -cores 2" is legible: points fan out across -j workers, and
		// each point's engine is itself sharded across -cores threads.
		engTag := ""
		if cores > 1 {
			engTag = fmt.Sprintf(" [engine: %d-core sharded]", cores)
		}
		sc.Sched.OnPoint = func(done, total int, key string, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%s)%s\n", done, total, key, elapsed.Round(time.Millisecond), engTag)
		}
	}
	sink, telShutdown, err := tel.setup(&sc)
	if err != nil {
		return err
	}
	defer telShutdown()
	if storeDir != "" {
		// The store rides the experiment scheduler, so it covers the
		// -saturate ladder; a plain single run bypasses it.
		st, err := store.OpenCLI(storeDir, "diam2sim")
		if err != nil {
			return err
		}
		defer func() {
			fmt.Fprintln(os.Stderr, "diam2sim:", st.Summary())
			if cerr := st.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "diam2sim: store close:", cerr)
			}
		}()
		sc.Sched.Store = st
		sc.Sched.Force = force
	}
	ugal := preset.BestAdaptive
	if ni > 0 {
		ugal.NI = ni
	}
	if c > 0 {
		if preset.SFStyle {
			ugal.CSF = c
		} else {
			ugal.C = c
		}
	}
	tp, err := preset.Build()
	if err != nil {
		return err
	}
	// Engine speed summary: total simulated cycles (all runs, all
	// workers) over the wall time they took. Stderr, like the sweep
	// summary: it is timing-dependent (and absent on a full store
	// replay), and stdout must stay byte-identical across -j values
	// and warm -store reruns.
	start := time.Now()
	simRate := func() {
		wall := time.Since(start)
		if cyc := harness.SimulatedCycles(); cyc > 0 && wall > 0 {
			fmt.Fprintf(os.Stderr, "engine    %d cycles simulated in %s (%.0f cycles/s)\n",
				cyc, wall.Round(time.Millisecond), float64(cyc)/wall.Seconds())
		}
	}
	cost := topo.CostOf(tp)
	fmt.Printf("topology  %s: N=%d R=%d radix=%d (%.2f ports, %.2f links per node)\n",
		preset.Name, cost.Nodes, cost.Routers, tp.Radix(), cost.PortsPerNode, cost.LinksPerNode)
	if cores > 1 {
		fmt.Printf("engine    sharded: %d partitions x %d worker threads per run (serial when -cores 1)\n", cores, cores)
	}

	if exchange != "" {
		var kind harness.ExchangeKind
		switch exchange {
		case "a2a":
			kind = harness.ExA2A
		case "nn":
			kind = harness.ExNN
		default:
			return fmt.Errorf("unknown exchange %q", exchange)
		}
		var ex *traffic.Exchange
		if kind == harness.ExA2A {
			ex = traffic.AllToAll(tp.Nodes(), sc.A2APackets, rand.New(rand.NewSource(sc.Seed)))
		} else {
			tor, err := traffic.TorusFor(tp)
			if err != nil {
				return err
			}
			ex, err = traffic.NearestNeighbor(tor, tp.Nodes(), sc.NNPackets)
			if err != nil {
				return err
			}
			fmt.Printf("torus     %dx%dx%d\n", tor.X, tor.Y, tor.Z)
		}
		res, eff, err := harness.RunExchange(tp, alg, ugal, ex, sc)
		if err != nil {
			return err
		}
		fmt.Printf("exchange  %s with %s: %d packets\n", ex.Name(), algName, ex.TotalPackets())
		fmt.Printf("completed in %d cycles (%.1f us at 100 Gbps)\n", res.Cycles,
			sim.DefaultConfig(1).LatencySeconds(float64(res.Cycles))*1e6)
		fmt.Printf("effective throughput %.1f%% of injection bandwidth\n", eff*100)
		printResults(res)
		simRate()
		return tel.report(sink)
	}

	var pat harness.PatternKind
	switch pattern {
	case "uni":
		pat = harness.PatUNI
	case "wc":
		pat = harness.PatWC
	default:
		return fmt.Errorf("unknown pattern %q", pattern)
	}
	if saturate {
		// The load ladder is a set of independent runs, so it goes
		// through the experiment scheduler and parallelizes with -j.
		sat, curve, err := harness.SaturationPoint(tp, alg, ugal, pat, harness.DefaultLoads(), 0.05, sc)
		if err != nil {
			return err
		}
		for _, p := range curve {
			fmt.Printf("load %.2f: throughput %.3f, avg latency %.0f cycles\n", p.Load, p.Throughput, p.AvgLatency)
		}
		fmt.Printf("saturation load (%s, %s): %.3f of injection bandwidth\n", pattern, algName, sat)
		simRate()
		fmt.Fprintf(os.Stderr, "diam2sim: %d points in %s wall time\n", len(curve), time.Since(start).Round(time.Millisecond))
		return tel.report(sink)
	}
	res, err := harness.RunSynthetic(tp, alg, ugal, pat, load, sc)
	if err != nil {
		return err
	}
	fmt.Printf("synthetic %s with %s at load %.2f for %d cycles (warmup %d)\n",
		pattern, algName, load, sc.Cycles, sc.Warmup)
	fmt.Printf("delivered throughput %.1f%% of injection bandwidth\n", res.Throughput*100)
	printResults(res)
	simRate()
	return tel.report(sink)
}

func printResults(res sim.Results) {
	fmt.Printf("packets   generated=%d injected=%d delivered=%d\n", res.Generated, res.Injected, res.Delivered)
	fmt.Printf("latency   avg=%.0f p99=%.0f max=%.0f cycles (network-only avg %.0f)\n",
		res.AvgLatency, res.P99Latency, res.MaxLatency, res.AvgNetLatency)
	fmt.Printf("routing   avg hops %.2f, %.1f%% indirect\n", res.AvgHops, res.IndirectFrac*100)
	f := res.Faults
	if f.LinkDownEvents+f.SkippedEvents > 0 {
		fmt.Printf("faults    downs=%d ups=%d skipped=%d rebuilds=%d\n",
			f.LinkDownEvents, f.LinkUpEvents, f.SkippedEvents, f.Rebuilds)
		fmt.Printf("recovery  dropped=%d retransmitted=%d pending=%d, max drop-to-delivery %d cycles\n",
			f.Dropped, f.Retransmits, f.RetxPending, f.MaxRecovery)
	}
}

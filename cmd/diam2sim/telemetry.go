package main

import (
	"fmt"
	"os"

	"diam2/internal/harness"
	"diam2/internal/telemetry"
)

// telOpts carries the -telemetry/-trace-out/-http flag values.
type telOpts struct {
	enabled  bool
	traceOut string
	httpAddr string
}

// setup wires a telemetry sink (and, with -http, a live registry) into
// the scale. It returns the sink (nil when disabled) and a teardown
// function for the HTTP server.
func (o telOpts) setup(sc *harness.Scale) (*harness.TelemetrySink, func(), error) {
	if !o.enabled {
		return nil, func() {}, nil
	}
	sink := &harness.TelemetrySink{}
	sc.Telemetry = harness.TelemetryPlan{Sink: sink}
	shutdown := func() {}
	if o.httpAddr != "" {
		reg := telemetry.NewRegistry()
		reg.PublishExpvar()
		sc.Telemetry.Registry = reg
		addr, stop, err := reg.Serve(o.httpAddr)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: live at http://%s/telemetry (pprof under /debug/pprof/)\n", addr)
		shutdown = func() { _ = stop() }
	}
	return sink, shutdown, nil
}

// report prints the telemetry summary and writes the JSONL trace.
func (o telOpts) report(sink *harness.TelemetrySink) error {
	if sink == nil {
		return nil
	}
	tot := sink.Totals()
	fmt.Printf("telemetry %d run(s): injected=%d delivered=%d dropped=%d link-flits=%d\n",
		tot.Points, tot.Injected, tot.Delivered, tot.Dropped, tot.LinkFlits)
	for i, snap := range sink.Snapshots() {
		if i == 6 {
			fmt.Printf("  ... %d more runs\n", tot.Points-i)
			break
		}
		fmt.Printf("  %s: latency min-routed n=%d avg=%.0f p99=%.0f | indirect n=%d avg=%.0f p99=%.0f\n",
			snap.Label,
			snap.LatencyMinimal.N, snap.LatencyMinimal.Mean, snap.LatencyMinimal.P99,
			snap.LatencyIndirect.N, snap.LatencyIndirect.Mean, snap.LatencyIndirect.P99)
	}
	heat := sink.Heatmap()
	for i, l := range heat {
		if i == 8 {
			fmt.Printf("  ... %d more links\n", len(heat)-i)
			break
		}
		if i == 0 {
			fmt.Println("hottest links (flits, load):")
		}
		fmt.Printf("  %4d -> %-4d %10d  %.3f\n", l.From, l.To, l.Flits, l.Load)
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := sink.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "telemetry: event trace written to %s\n", o.traceOut)
	}
	return nil
}

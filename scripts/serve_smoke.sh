#!/usr/bin/env bash
# Query-service smoke: diam2serve must come up against an empty store,
# answer a cold query from the fluid tier, answer the identical re-issue
# from the fluid-cache tier, escalate a near-saturation point to the
# flit-level simulator (pollable ticket to "done", after which the same
# query is a sim-cache hit), and drain cleanly on SIGTERM with exit 0.
#
# Usage: scripts/serve_smoke.sh [ticket-budget-seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
budget="${1:-120}"
workdir="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/diam2serve" ./cmd/diam2serve

echo "== start: diam2serve against an empty store"
"$workdir/diam2serve" -http 127.0.0.1:0 -store "$workdir/store" -scale quick \
  -escalate-band 0.15 2> "$workdir/serve.log" &
pid=$!

base=""
for _ in $(seq 50); do
  base="$(grep -o 'http://[0-9.:]*' "$workdir/serve.log" | head -1 || true)"
  [ -n "$base" ] && break
  sleep 0.1
done
if [ -z "$base" ]; then
  echo "FAIL: server never announced its address:" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi
echo "   listening at $base"

echo "== cold query: answered from the fluid tier"
curl -sf "$base/query?topo=SF(q=5,p=3)&routing=MIN&pattern=UNI&load=0.5" > "$workdir/cold.json"
grep -q '"tier": "fluid"' "$workdir/cold.json" || {
  echo "FAIL: cold query not answered from the fluid tier:" >&2
  cat "$workdir/cold.json" >&2
  exit 1
}

echo "== warm re-issue: answered from the fluid-cache tier"
curl -sf "$base/query?topo=SF(q=5,p=3)&routing=MIN&pattern=UNI&load=0.5" > "$workdir/warm.json"
grep -q '"tier": "fluid-cache"' "$workdir/warm.json" || {
  echo "FAIL: identical re-issue not a fluid-cache hit:" >&2
  cat "$workdir/warm.json" >&2
  exit 1
}

echo "== escalation: SF worst-case at load 0.18 sits in the band around its predicted saturation (1/6)"
curl -sf "$base/query?topo=SF(q=5,p=3)&routing=MIN&pattern=WC&load=0.18" > "$workdir/esc.json"
ticket="$(grep -o '"ticket": "esc-[0-9]*"' "$workdir/esc.json" | grep -o 'esc-[0-9]*' || true)"
if [ -z "$ticket" ]; then
  echo "FAIL: near-saturation query carried no escalation ticket:" >&2
  cat "$workdir/esc.json" >&2
  exit 1
fi
echo "   polling ticket $ticket"
start=$(date +%s)
while :; do
  curl -sf "$base/ticket/$ticket" > "$workdir/ticket.json"
  if grep -q '"state": "done"' "$workdir/ticket.json"; then break; fi
  if grep -q '"state": "failed"' "$workdir/ticket.json"; then
    echo "FAIL: escalation failed:" >&2
    cat "$workdir/ticket.json" >&2
    exit 1
  fi
  if [ $(( $(date +%s) - start )) -gt "$budget" ]; then
    echo "FAIL: ticket $ticket not done within ${budget}s:" >&2
    cat "$workdir/ticket.json" >&2
    exit 1
  fi
  sleep 0.2
done
elapsed=$(( $(date +%s) - start ))
echo "   escalation done in ${elapsed}s"

echo "== post-escalation: the same query is now a sim-cache hit"
curl -sf "$base/query?topo=SF(q=5,p=3)&routing=MIN&pattern=WC&load=0.18" > "$workdir/sim.json"
grep -q '"tier": "sim-cache"' "$workdir/sim.json" || {
  echo "FAIL: escalated point not answered from the sim-cache tier:" >&2
  cat "$workdir/sim.json" >&2
  exit 1
}

echo "== drain: SIGTERM must exit 0 after finishing in-flight work"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: diam2serve exited $rc on SIGTERM:" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi
grep -q 'diam2serve: drained' "$workdir/serve.log" || {
  echo "FAIL: no drain confirmation in the log:" >&2
  cat "$workdir/serve.log" >&2
  exit 1
}

echo "PASS: fluid -> fluid-cache -> escalation ticket ($ticket, ${elapsed}s) -> sim-cache, drained cleanly on SIGTERM"

#!/usr/bin/env bash
# Chaos smoke test for distributed campaigns: three diam2sweep
# -campaign worker processes share one store; a killer SIGKILLs whole
# generations of them mid-sweep (no cleanup, stale leases, torn
# segment tails), then fresh workers must converge — stealing the dead
# workers' leases — and the finishing worker's stdout must be
# byte-identical to a cold single-process run. This is the end-to-end
# version of TestChaosWorkersConverge, on real binaries.
#
# Usage: scripts/chaos_workers_smoke.sh [generations] [kill-delay-seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
generations="${1:-3}"
delay="${2:-1}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/diam2sweep" ./cmd/diam2sweep
go build -o "$workdir/diam2campaign" ./cmd/diam2campaign

common=(-fig 6a -scale quick -seed 7)
store="$workdir/store"
# Short lease TTL so a successor steals a SIGKILLed worker's lease in
# seconds instead of the production default's 30s.
worker_flags=(-campaign -store "$store" -lease-ttl 2s -backoff 100ms)
worker=0

# spawn starts a campaign worker in the background and leaves its pid
# in $spawned. It must run in the main shell (not $(...) command
# substitution): a subshell's child cannot be wait(1)ed on later, and
# the worker counter would never advance.
spawn() {
  worker=$((worker + 1))
  local id
  id="$(printf 'chaos-%03d' "$worker")"
  "$workdir/diam2sweep" "${common[@]}" -j 2 "${worker_flags[@]}" -worker-id "$id" \
    > "$workdir/out-$id.txt" 2> "$workdir/log-$id.txt" &
  spawned=$!
}

spawn3() { # fill $pids with a fresh generation of three workers
  pids=()
  for _ in 1 2 3; do
    spawn
    pids+=("$spawned")
  done
}

echo "== cold single-process baseline"
"$workdir/diam2sweep" "${common[@]}" -j 1 > "$workdir/cold.txt"

echo "== submit the campaign manifest"
"$workdir/diam2campaign" -store "$store" submit -name "chaos smoke fig 6a" -- "${common[@]}"

echo "== chaos phase: $generations generations of 3 workers, SIGKILL after ${delay}s"
kills=0
for gen in $(seq 1 "$generations"); do
  spawn3
  sleep "$delay"
  for pid in "${pids[@]}"; do
    if kill -0 "$pid" 2>/dev/null; then
      kills=$((kills + 1))
      kill -9 "$pid" 2>/dev/null || true
    fi
    wait "$pid" 2>/dev/null || true
  done
  echo "   generation $gen down"
done
if [ "$kills" -eq 0 ]; then
  echo "FAIL: no worker was ever caught alive; the sweep finished before every kill" >&2
  exit 1
fi
echo "   $kills workers SIGKILLed mid-sweep"

echo "== campaign status after the carnage (dead workers, stale leases expected)"
"$workdir/diam2campaign" -store "$store" status || true

echo "== convergence phase: fresh workers until one finishes clean"
deadline=$((SECONDS + 120))
finished=""
spawn3
while [ -z "$finished" ]; do
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "FAIL: campaign never converged within 120s" >&2
    for log in "$workdir"/log-*.txt; do echo "--- $log"; cat "$log"; done >&2
    exit 1
  fi
  for i in "${!pids[@]}"; do
    pid="${pids[$i]}"
    if kill -0 "$pid" 2>/dev/null; then
      continue
    fi
    if wait "$pid" 2>/dev/null; then
      finished="$pid"
      break
    fi
    # Transient death (lost a lease race, etc.) — respawn and keep going.
    spawn
    pids[$i]="$spawned"
  done
  sleep 0.2
done
# The finishing worker re-renders the full sweep (cache hits included),
# so exactly one stdout capture must match the cold run byte-for-byte.
out=""
for f in "$workdir"/out-chaos-*.txt; do
  if cmp -s "$workdir/cold.txt" "$f"; then out="$f"; break; fi
done
for pid in "${pids[@]}"; do
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
done

if [ -z "$out" ]; then
  echo "FAIL: no finished worker produced stdout byte-identical to the cold run" >&2
  for f in "$workdir"/out-chaos-*.txt; do
    echo "--- $f"; diff "$workdir/cold.txt" "$f" || true
  done >&2
  exit 1
fi
echo "   $(basename "$out") matches the cold run byte-for-byte"

echo "== final status: no leases or failures may remain"
"$workdir/diam2campaign" -store "$store" status
status="$("$workdir/diam2campaign" -store "$store" status)"
if ! grep -q 'leases    0 outstanding' <<<"$status"; then
  echo "FAIL: converged campaign still holds leases" >&2
  exit 1
fi
if grep -q 'QUARANTINED' <<<"$status"; then
  echo "FAIL: converged campaign quarantined points" >&2
  exit 1
fi

echo "PASS: campaign converged under SIGKILL chaos, byte-identical to the cold run"

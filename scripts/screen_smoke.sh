#!/usr/bin/env bash
# Screening-tier smoke: the analytic fluid sweep must answer a
# 1000+-point oblivious grid in seconds, store every point under its
# own fluid-tier key (a warm replay recomputes nothing and emits
# byte-identical output), and a reduced escalation pass through the
# flit-level simulator must find every escalated point's fluid estimate
# within its recorded calibration tolerance (-screen-check).
#
# Usage: scripts/screen_smoke.sh [screen-budget-seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
budget="${1:-60}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/diam2sweep" ./cmd/diam2sweep
store="$workdir/store"

echo "== screen-only: 1080 analytic points (grid 90) under the ${budget}s budget"
start=$(date +%s)
"$workdir/diam2sweep" -screen -screen-grid 90 -scale quick -store "$store" \
  > "$workdir/screen.txt" 2> "$workdir/screen.log"
elapsed=$(( $(date +%s) - start ))
grep -o 'screen: .*' "$workdir/screen.log"
if ! grep -q 'screen: 1080 analytic points' "$workdir/screen.log"; then
  echo "FAIL: expected 1080 screened points (3 presets x 4 routing/pattern combos x 90 loads):" >&2
  cat "$workdir/screen.log" >&2
  exit 1
fi
if [ "$elapsed" -gt "$budget" ]; then
  echo "FAIL: screening 1080 points took ${elapsed}s, over the ${budget}s budget" >&2
  exit 1
fi
echo "   screened in ${elapsed}s"

echo "== warm replay: every point must come back from its fluid-tier key"
"$workdir/diam2sweep" -screen -screen-grid 90 -scale quick -store "$store" \
  > "$workdir/warm.txt" 2> "$workdir/warm.log"
grep -o 'store: .*' "$workdir/warm.log"
if ! grep -q 'store: 1080 reused, 0 computed' "$workdir/warm.log"; then
  echo "FAIL: warm replay recomputed screened points (unstable fluid-tier keys):" >&2
  cat "$workdir/warm.log" >&2
  exit 1
fi
if ! cmp -s "$workdir/screen.txt" "$workdir/warm.txt"; then
  echo "FAIL: warm replay output differs from the cold screen" >&2
  diff "$workdir/screen.txt" "$workdir/warm.txt" >&2 || true
  exit 1
fi

echo "== escalation: reduced grid through the simulator, -screen-check gates recorded tolerances"
"$workdir/diam2sweep" -screen -screen-grid 30 -escalate-band 0.10 -screen-check \
  -scale quick -j 2 -store "$store" > "$workdir/escalate.txt" 2> "$workdir/escalate.log"
grep -o 'escalating .*' "$workdir/escalate.log"
grep -o 'screen check: .*' "$workdir/escalate.log"

echo "PASS: 1080 analytic points in ${elapsed}s, warm replay all-reuse, escalated points within recorded tolerances"

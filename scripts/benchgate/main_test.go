package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
BenchmarkParallelEngine/serial-4         	     100	  10000000 ns/op	       100 cycles/s
BenchmarkParallelEngine/serial-4         	     100	  10500000 ns/op	        95 cycles/s
BenchmarkParallelEngine/P=4/W=1-4        	     100	  12000000 ns/op	        83 cycles/s
BenchmarkParallelEngine/P=2/W=2-4        	     100	  13000000 ns/op	        76 cycles/s
BenchmarkParallelEngine/P=4/W=4-4        	     100	  14500000 ns/op	        69 cycles/s
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParseBenchText: raw -bench output parses to best-of-counts ns/op
// with the GOMAXPROCS suffix stripped.
func TestParseBenchText(t *testing.T) {
	got, err := parse(writeTemp(t, "bench.txt", benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	if v := got["BenchmarkParallelEngine/serial"]; v != 10000000 {
		t.Errorf("serial best-of-counts = %v, want 10000000 (minimum of the two runs)", v)
	}
	if _, ok := got["BenchmarkParallelEngine/P=4/W=1"]; !ok {
		t.Errorf("P=4/W=1 missing; keys: %v", got)
	}
}

// TestStripProcSuffix: only a trailing numeric -N (the GOMAXPROCS tag)
// is stripped; dashes inside names survive.
func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX/serial-4":  "BenchmarkX/serial",
		"BenchmarkX/serial":    "BenchmarkX/serial",
		"BenchmarkX/two-phase": "BenchmarkX/two-phase",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParseParallelJSON: the checked-in BENCH_parallel.json document
// parses into the same names `go test -bench BenchmarkParallelEngine`
// prints, so the recorded ns_op numbers gate a fresh run directly.
func TestParseParallelJSON(t *testing.T) {
	got, err := parse("../../BENCH_parallel.json")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"BenchmarkParallelEngine/serial",
		"BenchmarkParallelEngine/P=4/W=1",
		"BenchmarkParallelEngine/P=2/W=2",
		"BenchmarkParallelEngine/P=4/W=4",
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d cases, want %d: %v", len(got), len(want), got)
	}
	for _, name := range want {
		if got[name] <= 0 {
			t.Errorf("%s: ns_op %v, want positive", name, got[name])
		}
	}
}

// TestGateNormalizesMachineSpeed: a uniformly slower machine (every
// ratio 2x) passes; a regression concentrated in one case fails it and
// only it, and the delta table names the offender.
func TestGateNormalizesMachineSpeed(t *testing.T) {
	base := map[string]float64{"A": 100, "B": 200, "C": 300}

	uniform := map[string]float64{"A": 200, "B": 400, "C": 600}
	var sb strings.Builder
	failed, err := gate(base, uniform, 1.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("uniformly 2x slower machine failed %d benchmarks, want 0:\n%s", failed, sb.String())
	}

	skewed := map[string]float64{"A": 200, "B": 400, "C": 900} // C regressed 1.5x beyond the median
	sb.Reset()
	failed, err = gate(base, skewed, 1.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Errorf("concentrated regression failed %d benchmarks, want exactly 1:\n%s", failed, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "C") || !strings.Contains(out, "REGRESSION") {
		t.Errorf("delta table does not name the regressed benchmark:\n%s", out)
	}
	if !strings.Contains(out, "delta") {
		t.Errorf("delta table has no delta column:\n%s", out)
	}
}

// TestGateMismatchedSets: baseline-only and current-only benchmarks are
// reported but do not fail the gate; fully disjoint sets are an error.
func TestGateMismatchedSets(t *testing.T) {
	var sb strings.Builder
	failed, err := gate(
		map[string]float64{"A": 100, "B": 100, "old": 50},
		map[string]float64{"A": 100, "B": 100, "new": 70},
		1.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("mismatched-set run failed %d benchmarks, want 0:\n%s", failed, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "baseline-only") || !strings.Contains(out, "new benchmark") {
		t.Errorf("set mismatches not reported:\n%s", out)
	}
	if _, err := gate(map[string]float64{"A": 1}, map[string]float64{"B": 1}, 1.10, &sb); err == nil {
		t.Error("disjoint benchmark sets gated successfully, want error")
	}
}

// TestParseJSONRejectsMalformed: documents without a Benchmark function
// name or without positive ns_op numbers are rejected rather than
// silently gating nothing.
func TestParseJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no-func":  `{"benchmark": "numbers", "cycles_per_second": [{"case": "serial", "ns_op": 5}]}`,
		"no-nsop":  `{"benchmark": "BenchmarkX", "cycles_per_second": [{"case": "serial"}]}`,
		"no-cases": `{"benchmark": "BenchmarkX", "cycles_per_second": []}`,
	}
	for name, doc := range cases {
		if _, err := parse(writeTemp(t, name+".json", doc)); err == nil {
			t.Errorf("%s: malformed document parsed successfully, want error", name)
		}
	}
}

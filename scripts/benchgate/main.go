// Command benchgate compares a `go test -bench` output file against a
// checked-in baseline and fails (exit 1) when any benchmark regresses
// more than the threshold in ns/op.
//
// Cross-machine normalization: CI runners and developer machines
// differ in absolute speed, so raw ns/op comparisons against a
// checked-in baseline would gate on hardware, not code. benchgate
// instead computes each benchmark's current/baseline ratio and
// normalizes by the median ratio across all benchmarks — a uniformly
// slower machine shifts every ratio equally and cancels out, while a
// code regression concentrated in some benchmarks shows up as ratios
// above the median. A benchmark fails the gate when its ratio exceeds
// median * threshold.
//
// Usage:
//
//	go run ./scripts/benchgate -baseline .github/bench-baseline.txt -current out.txt
//	go run ./scripts/benchgate -baseline .github/bench-baseline.txt -current out.txt -update
//
// With -update the current file replaces the baseline (after a
// legitimate perf change; commit the result). Benchmarks present in
// only one file are reported but do not fail the gate, so adding or
// retiring cases does not require lockstep baseline updates.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line, e.g.
// "BenchmarkEngineStep/SF/load=0.1-2  1500  33606 ns/op  29758 cycles/s".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parse reads a -bench output file into name -> best (minimum) ns/op.
// Minimum-of-counts is the standard noise reduction: external
// interference only ever slows a run down.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if old, ok := best[name]; !ok || v < old {
			best[name] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return best, nil
}

// stripProcSuffix drops the trailing -N GOMAXPROCS tag go test appends
// to benchmark names, so baselines transfer across runner core counts.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	baseline := flag.String("baseline", "", "checked-in baseline file")
	current := flag.String("current", "", "fresh go test -bench output")
	threshold := flag.Float64("threshold", 1.10, "per-benchmark regression limit over the median ratio")
	update := flag.Bool("update", false, "replace the baseline with the current file instead of gating")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	if *update {
		data, err := os.ReadFile(*current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baseline, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: baseline %s updated from %s\n", *baseline, *current)
		return
	}
	base, err := parse(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := parse(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	type row struct {
		name      string
		base, cur float64
		ratio     float64
	}
	var rows []row
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			fmt.Printf("  %-50s baseline-only (retired? run benchgate -update)\n", name)
			continue
		}
		rows = append(rows, row{name, b, c, c / b})
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("  %-50s new benchmark (no baseline; run benchgate -update)\n", name)
		}
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks in common between baseline and current")
		os.Exit(2)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	ratios := make([]float64, len(rows))
	for i, r := range rows {
		ratios[i] = r.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}

	limit := median * *threshold
	failed := 0
	fmt.Printf("benchgate: %d benchmarks, machine-speed median ratio %.3f, per-benchmark limit %.3f\n",
		len(rows), median, limit)
	for _, r := range rows {
		verdict := "ok"
		if r.ratio > limit {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("  %-50s %12.0f -> %12.0f ns/op  ratio %.3f  %s\n",
			r.name, r.base, r.cur, r.ratio, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%% beyond the machine-speed median\n",
			failed, (*threshold-1)*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: pass")
}

// Command benchgate compares a `go test -bench` output file against a
// checked-in baseline and fails (exit 1) when any benchmark regresses
// more than the threshold in ns/op.
//
// Cross-machine normalization: CI runners and developer machines
// differ in absolute speed, so raw ns/op comparisons against a
// checked-in baseline would gate on hardware, not code. benchgate
// instead computes each benchmark's current/baseline ratio and
// normalizes by the median ratio across all benchmarks — a uniformly
// slower machine shifts every ratio equally and cancels out, while a
// code regression concentrated in some benchmarks shows up as ratios
// above the median. A benchmark fails the gate when its ratio exceeds
// median * threshold.
//
// Usage:
//
//	go run ./scripts/benchgate -baseline .github/bench-baseline.txt -current out.txt
//	go run ./scripts/benchgate -baseline BENCH_parallel.json -current out.txt
//	go run ./scripts/benchgate -baseline .github/bench-baseline.txt -current out.txt -update
//
// The baseline is either raw `go test -bench` output or one of the
// repo's BENCH_*.json result documents (detected by the .json
// extension): for JSON the recorded ns_op of each case is gated, so
// BENCH_parallel.json pins the sharded engine the same way
// bench-baseline.txt pins the serial hot path.
//
// With -update the current file replaces the baseline (after a
// legitimate perf change; commit the result); JSON baselines are
// curated documents and must be edited by hand instead. Benchmarks
// present in only one file are reported but do not fail the gate, so
// adding or retiring cases does not require lockstep baseline updates.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line, e.g.
// "BenchmarkEngineStep/SF/load=0.1-2  1500  33606 ns/op  29758 cycles/s".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parse reads a baseline or current file into name -> ns/op. Raw
// `go test -bench` output keeps the best (minimum) of repeated counts —
// the standard noise reduction, since external interference only ever
// slows a run down. A .json path is read as a BENCH_*.json result
// document instead.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return parseJSON(path, f)
	}
	return parseBench(path, f)
}

func parseBench(path string, f io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if old, ok := best[name]; !ok || v < old {
			best[name] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return best, nil
}

// benchPrefix extracts the Go benchmark function name cited in a
// BENCH_*.json "benchmark" field, e.g. "... BenchmarkParallelEngine)".
var benchPrefix = regexp.MustCompile(`Benchmark\w+`)

// parseJSON reads one of the repo's BENCH_*.json result documents into
// name -> ns/op. The recorded cases become "<BenchmarkFunc>/<case>"
// entries — the names `go test -bench` prints for the sub-benchmarks —
// so a fresh run can be gated directly against the checked-in numbers.
func parseJSON(path string, f io.Reader) (map[string]float64, error) {
	var doc struct {
		Benchmark string `json:"benchmark"`
		Cases     []struct {
			Case string  `json:"case"`
			NsOp float64 `json:"ns_op"`
		} `json:"cycles_per_second"`
	}
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	prefix := benchPrefix.FindString(doc.Benchmark)
	if prefix == "" {
		return nil, fmt.Errorf("%s: \"benchmark\" field names no Benchmark function", path)
	}
	best := make(map[string]float64, len(doc.Cases))
	for _, c := range doc.Cases {
		if c.Case == "" || c.NsOp <= 0 {
			return nil, fmt.Errorf("%s: case %q has no positive ns_op", path, c.Case)
		}
		best[prefix+"/"+c.Case] = c.NsOp
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no cycles_per_second cases found", path)
	}
	return best, nil
}

// stripProcSuffix drops the trailing -N GOMAXPROCS tag go test appends
// to benchmark names, so baselines transfer across runner core counts.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	baseline := flag.String("baseline", "", "checked-in baseline file")
	current := flag.String("current", "", "fresh go test -bench output")
	threshold := flag.Float64("threshold", 1.10, "per-benchmark regression limit over the median ratio")
	update := flag.Bool("update", false, "replace the baseline with the current file instead of gating")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	if *update {
		if strings.HasSuffix(*baseline, ".json") {
			fmt.Fprintln(os.Stderr, "benchgate: JSON baselines are curated result documents; edit the ns_op fields by hand instead of -update")
			os.Exit(2)
		}
		data, err := os.ReadFile(*current)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baseline, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: baseline %s updated from %s\n", *baseline, *current)
		return
	}
	base, err := parse(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := parse(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	failed, err := gate(base, cur, *threshold, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%% beyond the machine-speed median\n",
			failed, (*threshold-1)*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: pass")
}

// gate compares current against baseline ns/op maps and writes the
// delta table to w. It returns the number of benchmarks whose
// machine-normalized ratio exceeds the threshold, or an error when the
// two sets share no benchmarks.
func gate(base, cur map[string]float64, threshold float64, w io.Writer) (int, error) {
	type row struct {
		name      string
		base, cur float64
		ratio     float64
	}
	var rows []row
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(w, "  %-50s baseline-only (retired? run benchgate -update)\n", name)
			continue
		}
		rows = append(rows, row{name, b, c, c / b})
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(w, "  %-50s new benchmark (no baseline; run benchgate -update)\n", name)
		}
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("no benchmarks in common between baseline and current")
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	ratios := make([]float64, len(rows))
	for i, r := range rows {
		ratios[i] = r.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}

	limit := median * threshold
	failed := 0
	fmt.Fprintf(w, "benchgate: %d benchmarks, machine-speed median ratio %.3f, per-benchmark limit %.3f\n",
		len(rows), median, limit)
	for _, r := range rows {
		verdict := "ok"
		if r.ratio > limit {
			verdict = "REGRESSION"
			failed++
		}
		// delta is the benchmark's drift relative to the machine-speed
		// median: +0.0% means "moved exactly with the machine".
		delta := (r.ratio/median - 1) * 100
		fmt.Fprintf(w, "  %-50s %12.0f -> %12.0f ns/op  ratio %.3f  delta %+6.1f%%  %s\n",
			r.name, r.base, r.cur, r.ratio, delta, verdict)
	}
	return failed, nil
}

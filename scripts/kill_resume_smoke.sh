#!/usr/bin/env bash
# Kill-and-resume smoke test for the content-addressed experiment
# store: run a sweep with -store, SIGKILL it mid-flight, resume, and
# require the resumed output to be byte-identical to a cold serial run.
# This exercises the crash-safety claims end to end — torn tail
# records, stale indexes, and the resume recompute path — on real
# binaries, not test doubles.
#
# Usage: scripts/kill_resume_smoke.sh [kill-delay-seconds]
set -euo pipefail

cd "$(dirname "$0")/.."
delay="${1:-2}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/diam2sweep" ./cmd/diam2sweep
go build -o "$workdir/diam2store" ./cmd/diam2store

common=(-fig 6a -scale quick -seed 7)
store="$workdir/store"

echo "== cold serial baseline"
"$workdir/diam2sweep" "${common[@]}" -j 1 > "$workdir/cold.txt"

echo "== campaign with -store, SIGKILL after ${delay}s"
"$workdir/diam2sweep" "${common[@]}" -j 2 -store "$store" \
  > "$workdir/killed.txt" 2> "$workdir/killed.log" &
pid=$!
sleep "$delay"
if kill -0 "$pid" 2>/dev/null; then
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  echo "   killed pid $pid mid-flight"
else
  wait "$pid" || true
  echo "   sweep finished before the kill; resume degenerates to a full replay (still checked)"
fi

echo "== store must reopen and verify whatever instant the kill landed on"
# verify exits 1 when it finds a torn tail record — that is expected
# after a SIGKILL and exactly what resume handles; only a crash of the
# verifier itself is a failure.
"$workdir/diam2store" -store "$store" verify > "$workdir/verify.txt" 2>&1 || true
cat "$workdir/verify.txt"

echo "== resume"
"$workdir/diam2sweep" "${common[@]}" -j 2 -store "$store" \
  > "$workdir/warm.txt" 2> "$workdir/warm.log"
grep -o 'store: .*' "$workdir/warm.log" || true
if ! cmp -s "$workdir/cold.txt" "$workdir/warm.txt"; then
  echo "FAIL: resumed sweep output differs from the cold serial run" >&2
  diff "$workdir/cold.txt" "$workdir/warm.txt" >&2 || true
  exit 1
fi

echo "== full replay must compute nothing and still match"
"$workdir/diam2sweep" "${common[@]}" -j 2 -store "$store" \
  > "$workdir/replay.txt" 2> "$workdir/replay.log"
cmp "$workdir/cold.txt" "$workdir/replay.txt"
if ! grep -q 'store: [0-9]* reused, 0 computed' "$workdir/replay.log"; then
  echo "FAIL: replay over a complete store recomputed points:" >&2
  cat "$workdir/replay.log" >&2
  exit 1
fi

echo "PASS: kill-and-resume output is byte-identical to the cold serial run"

package diam2

import (
	"diam2/internal/core"
	"diam2/internal/fluid"
	"diam2/internal/harness"
	"diam2/internal/partition"
	"diam2/internal/routing"
	"diam2/internal/sim"
	"diam2/internal/telemetry"
	"diam2/internal/topo"
	"diam2/internal/traffic"
	"diam2/internal/viz"
)

// Topology re-exports the topology abstraction.
type Topology = topo.Topology

// Topology implementations.
type (
	// SlimFly is the direct diameter-two MMS-graph topology.
	SlimFly = topo.SlimFly
	// MLFM is the Multi-Layer Full-Mesh.
	MLFM = topo.MLFM
	// OFT is the two-level Orthogonal Fat-Tree.
	OFT = topo.OFT
	// HyperX2D is the two-dimensional HyperX baseline.
	HyperX2D = topo.HyperX2D
	// FatTree2 is the full-bisection two-level Fat-Tree baseline.
	FatTree2 = topo.FatTree2
	// FatTree3 is the three-level Fat-Tree reference.
	FatTree3 = topo.FatTree3
	// Dragonfly is the diameter-three baseline of Kim et al.
	Dragonfly = topo.Dragonfly
	// Jellyfish is the random regular-graph baseline of Singla et al.
	Jellyfish = topo.Jellyfish
	// DegradedTopology is a topology with failed links removed.
	DegradedTopology = topo.Degraded
)

// Rounding selects the Slim Fly endpoint count (floor or ceil of
// r'/2).
type Rounding = topo.Rounding

// Rounding choices.
const (
	RoundDown = topo.RoundDown
	RoundUp   = topo.RoundUp
)

// Topology constructors.
var (
	NewSlimFly           = topo.NewSlimFly
	NewMLFM              = topo.NewMLFM
	NewOFT               = topo.NewOFT
	NewHyperX2D          = topo.NewHyperX2D
	NewFatTree2          = topo.NewFatTree2
	NewFatTree3          = topo.NewFatTree3
	NewDragonfly         = topo.NewDragonfly
	NewJellyfish         = topo.NewJellyfish
	NewBalancedDragonfly = topo.NewBalancedDragonfly
	Degrade              = topo.Degrade
	NewCustom            = topo.NewCustom
	ReadEdgeList         = topo.ReadEdgeList
	WriteEdgeList        = topo.WriteEdgeList
	WriteDOT             = topo.WriteDOT
)

// Cost metrics (Fig. 3).
type (
	// Cost summarizes network cost per endpoint.
	Cost = topo.Cost
	// ScalingEntry is one row of the Fig. 3 comparison.
	ScalingEntry = topo.ScalingEntry
)

// Analysis helpers.
var (
	CostOf         = topo.CostOf
	ScalingTable   = topo.ScalingTable
	MooreBound     = topo.MooreBound
	MooreFraction  = topo.MooreFraction
	VerifyDiameter = topo.VerifyDiameter
)

// SSPT class (the paper's Section 2.2.2 contribution).
type (
	// SPTPattern is a Single-Path Tree interconnection pattern.
	SPTPattern = core.Pattern
	// SSPT is a stacked SPT descriptor.
	SSPT = core.Stacked
)

// SSPT constructors.
var (
	FullMeshPattern = core.FullMeshPattern
	ML3BPattern     = core.ML3BPattern
	StackSPT        = core.Stack
)

// Routing algorithms (Section 3).
type (
	// MinimalRouting is oblivious minimal routing.
	MinimalRouting = routing.Minimal
	// ValiantRouting is oblivious indirect random routing.
	ValiantRouting = routing.Valiant
	// UGALRouting is the UGAL-L adaptive family.
	UGALRouting = routing.UGAL
	// UGALGlobalRouting is the idealized global-knowledge UGAL
	// variant (ablation upper bound).
	UGALGlobalRouting = routing.UGALGlobal
	// PARRouting is progressive adaptive routing (extension).
	PARRouting = routing.PAR
	// UGALConfig parameterizes the adaptive algorithms.
	UGALConfig = routing.UGALConfig
)

// VCPolicy selects the deadlock-avoidance VC assignment.
type VCPolicy = routing.VCPolicy

// VC policies (Section 3.4).
const (
	VCByHop   = routing.VCByHop
	VCByPhase = routing.VCByPhase
)

// Routing constructors and checks.
var (
	NewMinimal    = routing.NewMinimal
	NewValiant    = routing.NewValiant
	NewUGAL       = routing.NewUGAL
	NewUGALGlobal = routing.NewUGALGlobal
	NewPAR        = routing.NewPAR
	CDGAcyclic    = routing.CDGAcyclic
)

// Simulator types.
type (
	// SimConfig is the switch/link parameterization.
	SimConfig = sim.Config
	// Network is the instantiated simulator state.
	Network = sim.Network
	// Engine is the cycle-driven simulator.
	Engine = sim.Engine
	// Results summarizes a run.
	Results = sim.Results
	// RoutingAlgorithm is the simulator's routing hook.
	RoutingAlgorithm = sim.RoutingAlgorithm
	// Workload drives injection.
	Workload = sim.Workload
)

// Simulator constructors.
var (
	DefaultSimConfig = sim.DefaultConfig
	TestSimConfig    = sim.TestConfig
	NewNetwork       = sim.NewNetwork
	NewEngine        = sim.NewEngine
)

// Traffic types (Section 4).
type (
	// Pattern maps sources to destinations.
	Pattern = traffic.Pattern
	// Uniform is global uniform random traffic.
	Uniform = traffic.Uniform
	// Permutation is a fixed source-to-destination mapping.
	Permutation = traffic.Permutation
	// OpenLoop is Bernoulli open-loop injection of a pattern.
	OpenLoop = traffic.OpenLoop
	// Exchange is a closed-loop message exchange.
	Exchange = traffic.Exchange
	// Torus3D is the nearest-neighbor process arrangement.
	Torus3D = traffic.Torus3D
	// Trace replays a timed application communication trace.
	Trace = traffic.Trace
	// TraceRecord is one message of a trace.
	TraceRecord = traffic.TraceRecord
	// Collective is a dependency-driven collective-operation workload.
	Collective = traffic.Collective
	// StepMessage is one transfer within a collective step.
	StepMessage = traffic.StepMessage
	// Mapping is a process-rank to node assignment.
	Mapping = traffic.Mapping
)

// Traffic constructors.
var (
	WorstCase                  = traffic.WorstCase
	RouterShift                = traffic.RouterShift
	AllToAll                   = traffic.AllToAll
	AllToAllSequential         = traffic.AllToAllSequential
	NewTrace                   = traffic.NewTrace
	ParseTrace                 = traffic.ParseTrace
	WriteTrace                 = traffic.WriteTrace
	SyntheticPhaseTrace        = traffic.SyntheticPhaseTrace
	NewCollective              = traffic.NewCollective
	RingAllGather              = traffic.RingAllGather
	RecursiveDoublingAllGather = traffic.RecursiveDoublingAllGather
	BinomialBroadcast          = traffic.BinomialBroadcast
	RingAllReduce              = traffic.RingAllReduce
	NewMapping                 = traffic.NewMapping
	ContiguousMapping          = traffic.ContiguousMapping
	RandomMapping              = traffic.RandomMapping
	RoundRobinMapping          = traffic.RoundRobinMapping
	NodeShift                  = traffic.NodeShift
	Tornado                    = traffic.Tornado
	BitComplement              = traffic.BitComplement
	BitReverse                 = traffic.BitReverse
	Transpose                  = traffic.Transpose
	NearestNeighbor            = traffic.NearestNeighbor
	FitTorus3D                 = traffic.FitTorus3D
)

// Harness types: presets, scales and experiment generators.
type (
	// Preset is one evaluated topology configuration.
	Preset = harness.Preset
	// Scale trades fidelity for speed.
	Scale = harness.Scale
	// AlgKind selects MIN/INR/A/ATh.
	AlgKind = harness.AlgKind
	// PatternKind selects UNI/WC.
	PatternKind = harness.PatternKind
	// ExchangeKind selects A2A/NN.
	ExchangeKind = harness.ExchangeKind
	// LoadPoint is one sample of a load sweep.
	LoadPoint = harness.LoadPoint
	// ResultTable is a renderable experiment output.
	ResultTable = harness.Table
	// Sched carries the experiment-scheduler knobs (worker count,
	// progress callback, cancellation) of Scale.Sched; the zero value
	// fans sweeps out across GOMAXPROCS workers with byte-identical
	// results for any worker count.
	Sched = harness.Sched
	// SweepProgress observes completed sweep points (Sched.OnPoint).
	SweepProgress = harness.Progress
)

// Harness enums.
const (
	AlgMIN = harness.AlgMIN
	AlgINR = harness.AlgINR
	AlgA   = harness.AlgA
	AlgATh = harness.AlgATh

	PatUNI = harness.PatUNI
	PatWC  = harness.PatWC

	ExA2A = harness.ExA2A
	ExNN  = harness.ExNN
)

// Harness entry points: one per paper exhibit, plus generic runners.
var (
	PaperPresets      = harness.PaperPresets
	SmallPresets      = harness.SmallPresets
	PaperScale        = harness.PaperScale
	QuickScale        = harness.QuickScale
	MediumScale       = harness.MediumScale
	RunSynthetic      = harness.RunSynthetic
	RunExchange       = harness.RunExchange
	SaturationPoint   = harness.SaturationPoint
	Table2ML3B        = harness.Table2ML3B
	Fig3Scalability   = harness.Fig3Scalability
	Fig4Bisection     = harness.Fig4Bisection
	Fig6Oblivious     = harness.Fig6Oblivious
	AdaptiveSweep     = harness.AdaptiveSweep
	FigExchange       = harness.FigExchange
	DiversityReport   = harness.DiversityReport
	BisectionEstimate = harness.BisectionEstimate
	DefaultLoads      = harness.DefaultLoads
	Replicate         = harness.Replicate
	FindSaturation    = harness.FindSaturation
	// DeriveSeed maps (base seed, point key) to a sweep point's seed —
	// the determinism contract behind parallel sweeps (DESIGN.md §9).
	DeriveSeed = harness.DeriveSeed
)

// ReplicationStats summarizes independent replications of one
// experiment point.
type ReplicationStats = harness.Replication

// Telemetry: the unified observability layer (DESIGN.md §11). A
// TelemetryCollector attaches to an engine (Engine.AttachTelemetry) or,
// via Scale.Telemetry, to every point of a sweep; it observes without
// perturbing — results are bit-identical with and without one attached.
type (
	// TelemetryCollector gathers one run's heatmap, latency split and
	// flight-recorder events.
	TelemetryCollector = telemetry.Collector
	// TelemetryOptions configures a collector.
	TelemetryOptions = telemetry.Options
	// TelemetrySnapshot is a JSON-serializable view of a collector.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryEvent is one flight-recorder record.
	TelemetryEvent = telemetry.Event
	// TelemetryRegistry tracks live collectors for the HTTP endpoint.
	TelemetryRegistry = telemetry.Registry
	// TelemetryPlan opts a Scale's runs into telemetry collection.
	TelemetryPlan = harness.TelemetryPlan
	// TelemetrySink accumulates per-point bundles of a sweep.
	TelemetrySink = harness.TelemetrySink
	// LinkSnap is one directed link of a congestion heatmap.
	LinkSnap = telemetry.LinkSnap
)

// Telemetry constructors and helpers.
var (
	NewTelemetryCollector = telemetry.NewCollector
	NewTelemetryRegistry  = telemetry.NewRegistry
	MergeTelemetryLinks   = telemetry.MergeLinks
	WriteHeatmapCSV       = telemetry.WriteHeatmapCSV
)

// Bisection analysis (Fig. 4 substrate).
var (
	Bisect           = partition.Bisect
	BisectionPerNode = partition.BisectionPerNode
	SpectralLambda2  = partition.SpectralLambda2
)

// PartitionConfig configures the bisection heuristic.
type PartitionConfig = partition.Config

// Fluid-model types: analytic link-load and saturation estimates that
// cross-validate the simulator.
type (
	// FluidModel computes per-link loads analytically.
	FluidModel = fluid.Model
	// FluidLinkLoads maps directed router links to relative load.
	FluidLinkLoads = fluid.LinkLoads
)

// NewFluidModel builds the analytic throughput model for a topology.
var NewFluidModel = fluid.New

// DrawTopologySVG renders a topology diagram in the style of the
// paper's Fig. 1 system views.
var DrawTopologySVG = viz.DrawSVG

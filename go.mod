module diam2

go 1.23
